// Churn fuzz: seeded random interleavings of streaming mutations
// (edge_add / edge_del / set_opinion / batched mutate) and queries over a
// LIVE socket, extending the serve_net_fuzz_test harness to the dynamic
// layer. The oracle is serial replay: a reference engine executes the
// exact same request sequence inline, single-threaded, and every socket
// answer must be byte-identical (ToStableJson) — determinism ledger
// entry #10 carried all the way through the TCP front end. The second
// test hammers queries from a concurrent connection while mutations
// stream, so the commit path (repair → Replace → Evict) races real
// readers; it runs in the TSan CI suite.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "datasets/io.h"
#include "datasets/synthetic.h"
#include "dyn/journal.h"
#include "dyn/mutation.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/protocol.h"
#include "util/rng.h"

namespace voteopt::net {
namespace {

using api::Request;
using dyn::Mutation;

// A directed edge u -> v that is NOT in the graph, found deterministically
// (same walk as tests/dyn_equivalence_test.cc).
Mutation AbsentEdgeAdd(const graph::Graph& graph, uint64_t salt,
                       double weight) {
  const uint32_t n = graph.num_nodes();
  for (uint64_t step = 0; step < 4096; ++step) {
    const uint32_t u = static_cast<uint32_t>((salt + step * 7) % n);
    const uint32_t v = static_cast<uint32_t>((salt * 3 + step * 11 + 1) % n);
    if (u == v) continue;
    auto in = graph.InNeighbors(v);
    bool present = false;
    for (const uint32_t s : in) {
      if (s == u) {
        present = true;
        break;
      }
    }
    if (!present) return Mutation::EdgeAdd(u, v, weight);
  }
  ADD_FAILURE() << "no absent edge found";
  return Mutation::EdgeAdd(0, 1, weight);
}

// An existing edge u -> v whose target row keeps at least one in-edge
// after deletion, or nullopt-like sentinel when the roll finds none.
bool PresentEdgeDel(const graph::Graph& graph, Rng* rng, Mutation* out) {
  const uint32_t n = graph.num_nodes();
  for (int attempt = 0; attempt < 64; ++attempt) {
    const uint32_t v = static_cast<uint32_t>(rng->UniformInt(n));
    auto in = graph.InNeighbors(v);
    if (in.size() < 2) continue;
    const uint32_t u = in[rng->UniformInt(in.size())];
    *out = Mutation::EdgeDel(u, v);
    return true;
  }
  return false;
}

class DynChurnFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto dataset =
        datasets::MakeDataset(datasets::DatasetName::kTwitterMask,
                              /*scale=*/0.04, /*seed=*/21);
    num_nodes_ = dataset.influence.num_nodes();
    num_candidates_ = dataset.state.num_candidates();
    prefix_ = ::testing::TempDir() + "/dyn_churn_srv";
    ref_prefix_ = ::testing::TempDir() + "/dyn_churn_ref";
    ASSERT_TRUE(datasets::SaveDatasetBundle(dataset, prefix_).ok());
    ASSERT_TRUE(datasets::SaveDatasetBundle(dataset, ref_prefix_).ok());

    // Served engine: multi-threaded workers and build/repair threads. The
    // reference engine replays serially, single-threaded, on its own copy
    // of the SAME bundle bytes — identical sketch by the build ledger,
    // then identical repairs by ledger entry #10, whatever the threads.
    engine_ = OpenEngine(prefix_, /*build_threads=*/3, /*workers=*/2);
    ref_engine_ = OpenEngine(ref_prefix_, /*build_threads=*/1, /*workers=*/1);

    ServerOptions server_options;
    server_options.batch.metrics = &engine_->metrics();
    server_ = std::make_unique<Server>(engine_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    server_.reset();
    engine_.reset();
    ref_engine_.reset();
    for (const std::string& prefix : {prefix_, ref_prefix_}) {
      for (const char* suffix :
           {".influence.edges", ".counts.edges", ".campaigns.tsv", ".meta",
            ".sketch", dyn::kMutationLogSuffix}) {
        std::remove((prefix + suffix).c_str());
      }
    }
  }

  std::unique_ptr<api::Engine> OpenEngine(const std::string& prefix,
                                          uint32_t build_threads,
                                          uint32_t workers) {
    api::EngineOptions options;
    options.load.bundle_prefix = prefix;
    options.load.build_theta = 6000;
    options.load.build_horizon = 8;
    options.load.save_built_sketch = true;
    options.load.build_threads = build_threads;
    options.num_worker_threads = workers;
    auto engine = api::Engine::Open(options);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    return engine.ok() ? std::move(*engine) : nullptr;
  }

  // One random request. Mutations are derived from the REFERENCE engine's
  // current graph (the serial-replay truth), so every generated edit is
  // valid at its point in the sequence on both sides.
  Request NextRequest(Rng* rng) {
    const graph::Graph& graph = ref_engine_->dataset().influence;
    const uint64_t kind = rng->UniformInt(10);
    if (kind < 3) {
      return Request::TopK(3, voting::ScoreSpec{});
    }
    if (kind < 5) {
      Request request = Request::TopK(2, voting::ScoreSpec{});
      request.rule = "plurality";
      return request;
    }
    if (kind < 6) {
      return Request::Evaluate({1, 2}, voting::ScoreSpec{});
    }
    if (kind < 7) {
      const Mutation add =
          AbsentEdgeAdd(graph, rng->Next(), 0.5 + rng->UniformInt(4) * 0.5);
      return Request::EdgeAdd(add.u, add.v, add.value);
    }
    if (kind < 8) {
      Mutation del = Mutation::EdgeDel(0, 0);
      if (PresentEdgeDel(graph, rng, &del)) {
        return Request::EdgeDel(del.u, del.v);
      }
      return Request::TopK(3, voting::ScoreSpec{});  // degenerate graph
    }
    if (kind < 9) {
      return Request::SetOpinion(
          static_cast<uint32_t>(rng->UniformInt(num_candidates_)),
          static_cast<uint32_t>(rng->UniformInt(num_nodes_)),
          static_cast<double>(rng->UniformInt(1000)) / 1000.0);
    }
    // Batched mutate: one structural edit plus one opinion edit, applied
    // atomically in one commit.
    std::vector<Mutation> batch;
    batch.push_back(AbsentEdgeAdd(graph, rng->Next(), 1.0));
    batch.push_back(Mutation::SetOpinion(
        static_cast<uint32_t>(rng->UniformInt(num_candidates_)),
        static_cast<uint32_t>(rng->UniformInt(num_nodes_)),
        static_cast<double>(rng->UniformInt(1000)) / 1000.0));
    return Request::Mutate(std::move(batch));
  }

  std::string prefix_, ref_prefix_;
  uint32_t num_nodes_ = 0;
  uint32_t num_candidates_ = 0;
  std::unique_ptr<api::Engine> engine_;
  std::unique_ptr<api::Engine> ref_engine_;
  std::unique_ptr<Server> server_;
};

TEST_F(DynChurnFuzzTest, InterleavedChurnMatchesSerialReplayByteForByte) {
  Rng rng(20230842);
  int mutations_sent = 0, queries_sent = 0;
  for (int round = 0; round < 4; ++round) {
    // Generate this round's script and its serial-replay answers. The
    // reference engine advances as we generate, so edit validity and
    // expected answers always reflect the sequence position.
    std::vector<std::string> wire_lines, expected;
    const int num_items = 10 + static_cast<int>(rng.UniformInt(4));
    for (int i = 0; i < num_items; ++i) {
      Request request = NextRequest(&rng);
      (request.mutations.empty() ? queries_sent : mutations_sent)++;
      wire_lines.push_back(serve::RequestToJson(request));
      api::Response reference = ref_engine_->Execute(request);
      ASSERT_TRUE(reference.ok)
          << "round " << round << " item " << i << ": " << reference.error;
      expected.push_back(reference.ToStableJson());
    }

    // Pipeline the whole script down one connection. Mutation verbs are
    // admin ops — ordering barriers in the batcher — so the served engine
    // executes the same serial sequence, just with concurrent workers for
    // the query stretches between commits.
    BlockingClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    for (const std::string& line : wire_lines) {
      ASSERT_TRUE(client.SendLine(line).ok());
    }
    client.ShutdownWrite();
    for (size_t i = 0; i < expected.size(); ++i) {
      std::string answer;
      ASSERT_TRUE(client.ReadLine(&answer).ok())
          << "round " << round << " answer " << i << " missing";
      auto parsed = serve::ParseResponse(answer);
      ASSERT_TRUE(parsed.ok()) << answer;
      EXPECT_EQ(parsed->ToStableJson(), expected[i])
          << "round " << round << " answer " << i << " for "
          << wire_lines[i];
    }
    std::string extra;
    EXPECT_FALSE(client.ReadLine(&extra).ok()) << "stray line: " << extra;
  }
  // The generator must actually churn, not just query.
  EXPECT_GT(mutations_sent, 8);
  EXPECT_GT(queries_sent, 15);

  // Both engines walked the same mutation schedule: the instances are the
  // same bytes (fingerprints recomputed over graph + opinions each commit).
  EXPECT_EQ(engine_->sketch_meta().bundle_fingerprint,
            ref_engine_->sketch_meta().bundle_fingerprint);
}

TEST_F(DynChurnFuzzTest, QueriesRacingCommitsStayCleanAndConverge) {
  // A hammer connection streams queries while the main thread commits
  // mutations on another connection. Racing answers may come from the
  // pre- or post-commit instance — but every one must parse, carry no
  // error, and once the churn stops the served answer must equal the
  // serial-replay answer exactly.
  std::atomic<bool> done{false};
  std::atomic<int> hammered{0};
  std::thread hammer([&] {
    BlockingClient client;
    if (!client.Connect("127.0.0.1", server_->port()).ok()) return;
    const std::string line =
        serve::RequestToJson(Request::TopK(3, voting::ScoreSpec{}));
    while (!done.load(std::memory_order_relaxed)) {
      if (!client.SendLine(line).ok()) return;
      std::string answer;
      if (!client.ReadLine(&answer).ok()) return;
      auto parsed = serve::ParseResponse(answer);
      ASSERT_TRUE(parsed.ok()) << answer;
      ASSERT_TRUE(parsed->ok) << answer;
      hammered.fetch_add(1, std::memory_order_relaxed);
    }
  });

  Rng rng(4242);
  BlockingClient mutator;
  ASSERT_TRUE(mutator.Connect("127.0.0.1", server_->port()).ok());
  for (int i = 0; i < 8; ++i) {
    const graph::Graph& graph = ref_engine_->dataset().influence;
    Request request;
    if (i % 2 == 0) {
      const Mutation add = AbsentEdgeAdd(graph, rng.Next(), 1.0);
      request = Request::EdgeAdd(add.u, add.v, add.value);
    } else {
      Mutation del = Mutation::EdgeDel(0, 0);
      ASSERT_TRUE(PresentEdgeDel(graph, &rng, &del));
      request = Request::EdgeDel(del.u, del.v);
    }
    api::Response reference = ref_engine_->Execute(request);
    ASSERT_TRUE(reference.ok) << reference.error;
    ASSERT_TRUE(mutator.SendLine(serve::RequestToJson(request)).ok());
    std::string answer;
    ASSERT_TRUE(mutator.ReadLine(&answer).ok());
    auto parsed = serve::ParseResponse(answer);
    ASSERT_TRUE(parsed.ok()) << answer;
    EXPECT_EQ(parsed->ToStableJson(), reference.ToStableJson());
  }
  done.store(true, std::memory_order_relaxed);
  hammer.join();
  EXPECT_GT(hammered.load(), 0);

  // Post-churn convergence: the racing reads are over, the instances must
  // be identical, and a fresh served answer must match serial replay.
  const Request canary = Request::TopK(3, voting::ScoreSpec{});
  const std::string expected = ref_engine_->Execute(canary).ToStableJson();
  ASSERT_TRUE(mutator.SendLine(serve::RequestToJson(canary)).ok());
  std::string answer;
  ASSERT_TRUE(mutator.ReadLine(&answer).ok());
  auto parsed = serve::ParseResponse(answer);
  ASSERT_TRUE(parsed.ok()) << answer;
  EXPECT_EQ(parsed->ToStableJson(), expected);
  EXPECT_EQ(engine_->sketch_meta().bundle_fingerprint,
            ref_engine_->sketch_meta().bundle_fingerprint);
}

}  // namespace
}  // namespace voteopt::net
