#include "serve/protocol.h"

#include <gtest/gtest.h>

#include "serve/lru_cache.h"

namespace voteopt::serve {
namespace {

TEST(ParseRequestTest, ParsesTopK) {
  auto request = ParseRequest(
      R"({"op": "topk", "k": 25, "rule": "plurality", "id": "q-1"})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->op, Request::Op::kTopK);
  EXPECT_EQ(request->k, 25u);
  EXPECT_EQ(request->rule, "plurality");
  EXPECT_EQ(request->id, "q-1");
}

TEST(ParseRequestTest, ParsesMinSeedWithDefaults) {
  auto request = ParseRequest(R"({"op": "minseed"})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->op, Request::Op::kMinSeed);
  EXPECT_EQ(request->k_max, 0u);  // 0 = search up to n
  EXPECT_EQ(request->rule, "cumulative");
}

TEST(ParseRequestTest, ParsesEvaluateWithSeedsAndOverrides) {
  auto request = ParseRequest(
      R"({"op": "evaluate", "seeds": [3, 17, 4], )"
      R"("override": [[5, 0.9], [12, 0.25]], "rule": "copeland"})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->op, Request::Op::kEvaluate);
  EXPECT_EQ(request->seeds, (std::vector<graph::NodeId>{3, 17, 4}));
  ASSERT_EQ(request->overrides.size(), 2u);
  EXPECT_EQ(request->overrides[0].first, 5u);
  EXPECT_DOUBLE_EQ(request->overrides[0].second, 0.9);
}

TEST(ParseRequestTest, ParsesPositionalOmega) {
  auto request = ParseRequest(
      R"({"op": "topk", "k": 2, "rule": "positional", "omega": [1.0, 0.5]})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->omega, (std::vector<double>{1.0, 0.5}));
}

TEST(ParseRequestTest, ParsesAdminVerbs) {
  auto load = ParseRequest(
      R"({"op": "load", "dataset": "yelp", "bundle": "/data/yelp", )"
      R"("sketch": "/data/yelp.big.sketch", "theta": 1048576})");
  ASSERT_TRUE(load.ok()) << load.status().ToString();
  EXPECT_EQ(load->op, Request::Op::kLoad);
  EXPECT_EQ(load->dataset, "yelp");
  EXPECT_EQ(load->bundle, "/data/yelp");
  EXPECT_EQ(load->sketch, "/data/yelp.big.sketch");
  EXPECT_EQ(load->theta, 1048576u);
  EXPECT_TRUE(IsAdminOp(load->op));

  auto unload = ParseRequest(R"({"op": "unload", "dataset": "yelp"})");
  ASSERT_TRUE(unload.ok());
  EXPECT_EQ(unload->op, Request::Op::kUnload);
  EXPECT_EQ(unload->dataset, "yelp");

  auto list = ParseRequest(R"({"op": "list"})");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->op, Request::Op::kList);

  EXPECT_FALSE(IsAdminOp(Request::Op::kTopK));
  EXPECT_FALSE(IsAdminOp(Request::Op::kMinSeed));
  EXPECT_FALSE(IsAdminOp(Request::Op::kEvaluate));
}

TEST(ParseRequestTest, ParsesDatasetRoutingOnQueries) {
  auto request =
      ParseRequest(R"({"op": "topk", "k": 3, "dataset": "dblp"})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->dataset, "dblp");
  // Ill-typed routing fields are rejected, not coerced.
  EXPECT_FALSE(ParseRequest(R"({"op": "topk", "dataset": 7})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op": "load", "bundle": []})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op": "load", "theta": -1})").ok());
  // From 2^53 on, JSON integers no longer round-trip through double —
  // reject instead of silently coercing.
  EXPECT_FALSE(
      ParseRequest(R"({"op": "load", "theta": 9007199254740992})").ok());
  EXPECT_FALSE(
      ParseRequest(R"({"op": "load", "theta": 9007199254740993})").ok());
  EXPECT_TRUE(
      ParseRequest(R"({"op": "load", "theta": 9007199254740991})").ok());
}

TEST(ResponseTest, SerializesListShape) {
  Response response;
  response.op = "list";
  DatasetInfo info;
  info.name = "yelp";
  info.num_nodes = 100;
  info.num_candidates = 10;
  info.theta = 4096;
  info.horizon = 20;
  info.target = 3;
  response.datasets.push_back(info);
  info.name = "dblp";
  info.sketch_built = true;
  response.datasets.push_back(info);
  const std::string json = response.ToJson();
  EXPECT_NE(json.find("\"datasets\": [{\"name\": \"yelp\""),
            std::string::npos);
  EXPECT_NE(json.find("\"theta\": 4096"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"dblp\""), std::string::npos);
  EXPECT_NE(json.find("\"sketch_built\": true"), std::string::npos);
}

TEST(ResponseTest, StableJsonDropsOnlyMillis) {
  Response response;
  response.op = "topk";
  response.dataset = "yelp";
  response.seeds = {1, 2};
  response.estimated_score = 3.5;
  response.millis = 12.25;
  const std::string stable = response.ToStableJson();
  EXPECT_EQ(stable.find("millis"), std::string::npos);
  EXPECT_NE(stable.find("\"seeds\": [1, 2]"), std::string::npos);
  EXPECT_EQ(stable.back(), '}');
  // Two runs differing only in timing compare equal.
  Response slower = response;
  slower.millis = 99.0;
  EXPECT_EQ(stable, slower.ToStableJson());
  EXPECT_NE(response.ToJson(), slower.ToJson());

  // Error responses carry no millis; stable form is the full form.
  Request request;
  request.op = Request::Op::kTopK;
  const Response error = Response::Error(request, Status::NotFound("x"));
  EXPECT_EQ(error.ToStableJson(), error.ToJson());
}

TEST(ResponseTest, EchoesDatasetOnSuccess) {
  Response response;
  response.op = "topk";
  response.dataset = "yelp";
  response.seeds = {1};
  EXPECT_NE(response.ToJson().find("\"dataset\": \"yelp\""),
            std::string::npos);
}

TEST(ParseRequestTest, IgnoresUnknownFieldsForForwardCompat) {
  auto request =
      ParseRequest(R"({"op": "topk", "k": 1, "deadline_ms": 250})");
  EXPECT_TRUE(request.ok());
}

TEST(ParseRequestTest, VersionDefaultsToOneAndGatesUnknownMajors) {
  auto v1 = ParseRequest(R"({"op": "topk", "k": 1})");
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->v, 1u);
  auto v2 = ParseRequest(R"({"op": "rulesweep", "v": 2, "k": 3})");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->v, 2u);
  EXPECT_EQ(v2->op, Request::Op::kRuleSweep);
  EXPECT_FALSE(ParseRequest(R"({"op": "topk", "v": 9, "k": 1})").ok());
}

TEST(ParseRequestTest, ParsesMethodFieldCaseInsensitively) {
  auto request = ParseRequest(
      R"({"op": "topk", "k": 2, "method": "ged-t"})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->method, baselines::Method::kGedT);
  // Absent method defaults to RS, the paper's recommendation.
  EXPECT_EQ(ParseRequest(R"({"op": "topk", "k": 2})")->method,
            baselines::Method::kRS);
  EXPECT_FALSE(ParseRequest(R"({"op": "topk", "method": "nope"})").ok());
}

TEST(ParseRequestTest, ParsesMethodCompareAndRuleSweep) {
  auto compare = ParseRequest(
      R"({"op": "methodcompare", "v": 2, "k": 6, "methods": ["dm", "RS"]})");
  ASSERT_TRUE(compare.ok()) << compare.status().ToString();
  EXPECT_EQ(compare->op, Request::Op::kMethodCompare);
  EXPECT_EQ(compare->k, 6u);
  EXPECT_EQ(compare->methods,
            (std::vector<baselines::Method>{baselines::Method::kDM,
                                            baselines::Method::kRS}));
  EXPECT_FALSE(IsAdminOp(compare->op));

  auto sweep = ParseRequest(R"({"op": "rulesweep", "k": 5, "p": 2})");
  ASSERT_TRUE(sweep.ok());
  EXPECT_EQ(sweep->op, Request::Op::kRuleSweep);
  EXPECT_EQ(sweep->p, 2u);
  EXPECT_FALSE(IsAdminOp(sweep->op));
}

TEST(ParseRequestTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest(R"({"op": "topk")").ok());        // unterminated
  EXPECT_FALSE(ParseRequest(R"({"k": 5})").ok());             // no op
  EXPECT_FALSE(ParseRequest(R"({"op": "frobnicate"})").ok()); // bad op
  EXPECT_FALSE(ParseRequest(R"({"op": 7})").ok());            // ill-typed op
  EXPECT_FALSE(ParseRequest(R"({"op": "topk", "k": -3})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op": "topk", "k": 2.5})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op": "evaluate", "seeds": [1, "x"]})").ok());
  EXPECT_FALSE(
      ParseRequest(R"({"op": "evaluate", "override": [[1]]})").ok());
  EXPECT_FALSE(ParseRequest(R"([1, 2, 3])").ok());  // not an object
  EXPECT_FALSE(ParseRequest(R"({"op": "topk"} trailing)").ok());
}

TEST(ResponseTest, SerializesErrorShape) {
  Request request;
  request.op = Request::Op::kEvaluate;
  request.id = "r9";
  const Response response =
      Response::Error(request, Status::OutOfRange("seed id out of range"));
  const std::string json = response.ToJson();
  EXPECT_NE(json.find("\"op\": \"evaluate\""), std::string::npos);
  EXPECT_NE(json.find("\"id\": \"r9\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(json.find("seed id out of range"), std::string::npos);
}

TEST(ResponseTest, SerializesTopKShapeAndEscapes) {
  Response response;
  response.op = "topk";
  response.id = "with \"quotes\"";
  response.seeds = {1, 2, 3};
  response.estimated_score = 12.5;
  response.exact_score = 12.0;
  const std::string json = response.ToJson();
  EXPECT_NE(json.find("\"seeds\": [1, 2, 3]"), std::string::npos);
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
  // A response must itself parse as a JSON object (frontends echo these).
  EXPECT_TRUE(ParseRequest(R"({"op": "topk", "k": 1})").ok());
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int> cache(2);
  cache.Put("a", 1);
  cache.Put("b", 2);
  ASSERT_NE(cache.Get("a"), nullptr);  // a is now most recent
  cache.Put("c", 3);                   // evicts b
  EXPECT_EQ(cache.Get("b"), nullptr);
  ASSERT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(*cache.Get("a"), 1);
  ASSERT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, PutReplacesExistingKey) {
  LruCache<int> cache(2);
  cache.Put("a", 1);
  cache.Put("a", 5);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.Get("a"), 5);
}

TEST(LruCacheTest, ZeroCapacityClampsToOne) {
  LruCache<int> cache(0);
  cache.Put("a", 1);
  EXPECT_EQ(*cache.Get("a"), 1);
  cache.Put("b", 2);
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(*cache.Get("b"), 2);
}

}  // namespace
}  // namespace voteopt::serve
