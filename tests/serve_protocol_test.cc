#include "serve/protocol.h"

#include <gtest/gtest.h>

#include "serve/lru_cache.h"

namespace voteopt::serve {
namespace {

TEST(ParseRequestTest, ParsesTopK) {
  auto request = ParseRequest(
      R"({"op": "topk", "k": 25, "rule": "plurality", "id": "q-1"})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->op, Request::Op::kTopK);
  EXPECT_EQ(request->k, 25u);
  EXPECT_EQ(request->rule, "plurality");
  EXPECT_EQ(request->id, "q-1");
}

TEST(ParseRequestTest, ParsesMinSeedWithDefaults) {
  auto request = ParseRequest(R"({"op": "minseed"})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->op, Request::Op::kMinSeed);
  EXPECT_EQ(request->k_max, 0u);  // 0 = search up to n
  EXPECT_EQ(request->rule, "cumulative");
}

TEST(ParseRequestTest, ParsesEvaluateWithSeedsAndOverrides) {
  auto request = ParseRequest(
      R"({"op": "evaluate", "seeds": [3, 17, 4], )"
      R"("override": [[5, 0.9], [12, 0.25]], "rule": "copeland"})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->op, Request::Op::kEvaluate);
  EXPECT_EQ(request->seeds, (std::vector<graph::NodeId>{3, 17, 4}));
  ASSERT_EQ(request->overrides.size(), 2u);
  EXPECT_EQ(request->overrides[0].first, 5u);
  EXPECT_DOUBLE_EQ(request->overrides[0].second, 0.9);
}

TEST(ParseRequestTest, ParsesPositionalOmega) {
  auto request = ParseRequest(
      R"({"op": "topk", "k": 2, "rule": "positional", "omega": [1.0, 0.5]})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->omega, (std::vector<double>{1.0, 0.5}));
}

TEST(ParseRequestTest, IgnoresUnknownFieldsForForwardCompat) {
  auto request =
      ParseRequest(R"({"op": "topk", "k": 1, "deadline_ms": 250})");
  EXPECT_TRUE(request.ok());
}

TEST(ParseRequestTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest(R"({"op": "topk")").ok());        // unterminated
  EXPECT_FALSE(ParseRequest(R"({"k": 5})").ok());             // no op
  EXPECT_FALSE(ParseRequest(R"({"op": "frobnicate"})").ok()); // bad op
  EXPECT_FALSE(ParseRequest(R"({"op": 7})").ok());            // ill-typed op
  EXPECT_FALSE(ParseRequest(R"({"op": "topk", "k": -3})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op": "topk", "k": 2.5})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op": "evaluate", "seeds": [1, "x"]})").ok());
  EXPECT_FALSE(
      ParseRequest(R"({"op": "evaluate", "override": [[1]]})").ok());
  EXPECT_FALSE(ParseRequest(R"([1, 2, 3])").ok());  // not an object
  EXPECT_FALSE(ParseRequest(R"({"op": "topk"} trailing)").ok());
}

TEST(ResponseTest, SerializesErrorShape) {
  Request request;
  request.op = Request::Op::kEvaluate;
  request.id = "r9";
  const Response response =
      Response::Error(request, Status::OutOfRange("seed id out of range"));
  const std::string json = response.ToJson();
  EXPECT_NE(json.find("\"op\": \"evaluate\""), std::string::npos);
  EXPECT_NE(json.find("\"id\": \"r9\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(json.find("seed id out of range"), std::string::npos);
}

TEST(ResponseTest, SerializesTopKShapeAndEscapes) {
  Response response;
  response.op = "topk";
  response.id = "with \"quotes\"";
  response.seeds = {1, 2, 3};
  response.estimated_score = 12.5;
  response.exact_score = 12.0;
  const std::string json = response.ToJson();
  EXPECT_NE(json.find("\"seeds\": [1, 2, 3]"), std::string::npos);
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
  // A response must itself parse as a JSON object (frontends echo these).
  EXPECT_TRUE(ParseRequest(R"({"op": "topk", "k": 1})").ok());
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int> cache(2);
  cache.Put("a", 1);
  cache.Put("b", 2);
  ASSERT_NE(cache.Get("a"), nullptr);  // a is now most recent
  cache.Put("c", 3);                   // evicts b
  EXPECT_EQ(cache.Get("b"), nullptr);
  ASSERT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(*cache.Get("a"), 1);
  ASSERT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, PutReplacesExistingKey) {
  LruCache<int> cache(2);
  cache.Put("a", 1);
  cache.Put("a", 5);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.Get("a"), 5);
}

TEST(LruCacheTest, ZeroCapacityClampsToOne) {
  LruCache<int> cache(0);
  cache.Put("a", 1);
  EXPECT_EQ(*cache.Get("a"), 1);
  cache.Put("b", 2);
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(*cache.Get("b"), 2);
}

}  // namespace
}  // namespace voteopt::serve
