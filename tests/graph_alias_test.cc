#include "graph/alias_table.h"

#include <gtest/gtest.h>

#include <map>

#include "graph/builder.h"
#include "graph/generators.h"

namespace voteopt::graph {
namespace {

TEST(AliasSamplerTest, ExactProbabilitiesMatchWeights) {
  GraphBuilder b(4);
  b.AddEdge(0, 3, 0.1);
  b.AddEdge(1, 3, 0.3);
  b.AddEdge(2, 3, 0.6);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  AliasSampler sampler(*g);
  // Reconstructed per-slot probabilities must equal the normalized weights.
  EXPECT_NEAR(sampler.Probability(3, 0), 0.1, 1e-12);
  EXPECT_NEAR(sampler.Probability(3, 1), 0.3, 1e-12);
  EXPECT_NEAR(sampler.Probability(3, 2), 0.6, 1e-12);
}

TEST(AliasSamplerTest, EmpiricalFrequenciesMatch) {
  GraphBuilder b(4);
  b.AddEdge(0, 3, 0.2);
  b.AddEdge(1, 3, 0.5);
  b.AddEdge(2, 3, 0.3);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  AliasSampler sampler(*g);
  Rng rng(99);
  std::map<NodeId, int> counts;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    ++counts[sampler.SampleInNeighbor(3, &rng)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.2, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(trials), 0.5, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(trials), 0.3, 0.01);
}

TEST(AliasSamplerTest, NodeWithoutInEdgesReturnsSentinel) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 1.0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  AliasSampler sampler(*g);
  Rng rng(1);
  EXPECT_EQ(sampler.SampleInNeighbor(0, &rng), AliasSampler::kNoNeighbor);
  EXPECT_EQ(sampler.SampleInNeighbor(1, &rng), 0u);
}

TEST(AliasSamplerTest, SingleInNeighborAlwaysSampled) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 0.37);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  AliasSampler sampler(*g);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.SampleInNeighbor(1, &rng), 0u);
  }
}

TEST(AliasSamplerTest, UnnormalizedWeightsSampledProportionally) {
  GraphBuilder b(3);
  b.AddEdge(0, 2, 2.0);
  b.AddEdge(1, 2, 6.0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  AliasSampler sampler(*g);
  EXPECT_NEAR(sampler.Probability(2, 0), 0.25, 1e-12);
  EXPECT_NEAR(sampler.Probability(2, 1), 0.75, 1e-12);
}

TEST(AliasSamplerTest, ProbabilitiesSumToOnePerNode) {
  Rng rng(123);
  InteractionCounts counts;
  Graph g = ErdosRenyiDigraph(50, 400, counts, &rng).NormalizedIncoming();
  AliasSampler sampler(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const size_t deg = g.InNeighbors(v).size();
    if (deg == 0) continue;
    double total = 0.0;
    for (size_t i = 0; i < deg; ++i) total += sampler.Probability(v, i);
    EXPECT_NEAR(total, 1.0, 1e-9) << "node " << v;
  }
}

// --- AliasSlice: the block-local alias tables backing sketch_ooc/ must be
// bit-identical in behavior to the full-graph AliasSampler, because the
// determinism ledger's OOC == in-memory guarantee (entry #7) rests on the
// two consuming the same RNG stream identically. ---

TEST(AliasSliceTest, SliceSamplesBitIdenticalToFullSampler) {
  Rng graph_rng(123);
  InteractionCounts counts;
  Graph g = ErdosRenyiDigraph(60, 500, counts, &graph_rng).NormalizedIncoming();
  AliasSampler full(g);

  // Slice over an arbitrary node range [lo, hi): rebase the in-CSR spans
  // exactly as sketch_ooc::WriteBlocks does.
  const NodeId lo = 13, hi = 47;
  const auto offsets = g.InOffsets();
  const uint64_t edge_begin = offsets[lo];
  std::vector<uint64_t> local_offsets(hi - lo + 1);
  for (NodeId v = lo; v <= hi; ++v) {
    local_offsets[v - lo] = offsets[v] - edge_begin;
  }
  const uint64_t num_local = local_offsets.back();
  AliasSlice slice(local_offsets,
                   g.InSources().subspan(edge_begin, num_local),
                   g.InWeightsRaw().subspan(edge_begin, num_local));

  // Same RNG stream through both samplers: every draw must agree exactly,
  // including the empty-row sentinel.
  for (NodeId v = lo; v < hi; ++v) {
    Rng full_rng(v * 7919 + 1);
    Rng slice_rng(v * 7919 + 1);
    for (int i = 0; i < 200; ++i) {
      const NodeId expect = full.SampleInNeighbor(v, &full_rng);
      const NodeId got = slice.SampleInNeighbor(v - lo, &slice_rng);
      ASSERT_EQ(got, expect == AliasSampler::kNoNeighbor
                         ? AliasSlice::kNoNeighbor
                         : expect)
          << "node " << v << " draw " << i;
    }
    // And the streams themselves stay in lockstep (same number of draws).
    ASSERT_EQ(full_rng.Next(), slice_rng.Next()) << "node " << v;
  }
}

TEST(AliasSliceTest, WholeGraphSliceMatchesEverywhere) {
  // Degenerate single-block plan: the slice covers all of [0, n).
  Rng graph_rng(7);
  InteractionCounts counts;
  Graph g = ErdosRenyiDigraph(40, 250, counts, &graph_rng).NormalizedIncoming();
  AliasSampler full(g);
  AliasSlice slice(g.InOffsets(), g.InSources(), g.InWeightsRaw());
  Rng a(42), b(42);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (int i = 0; i < 50; ++i) {
      const NodeId expect = full.SampleInNeighbor(v, &a);
      const NodeId got = slice.SampleInNeighbor(v, &b);
      ASSERT_EQ(got, expect == AliasSampler::kNoNeighbor
                         ? AliasSlice::kNoNeighbor
                         : expect);
    }
  }
}

TEST(AliasSliceTest, SingleNodeSliceMatches) {
  // The pathological one-node-per-block partition reduces every slice to
  // one row; it must still agree with the full sampler.
  GraphBuilder b(4);
  b.AddEdge(0, 3, 0.1);
  b.AddEdge(1, 3, 0.3);
  b.AddEdge(2, 3, 0.6);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  AliasSampler full(*g);
  const auto offsets = g->InOffsets();
  for (NodeId v = 0; v < 4; ++v) {
    const uint64_t begin = offsets[v], end = offsets[v + 1];
    const std::vector<uint64_t> local = {0, end - begin};
    AliasSlice slice(local, g->InSources().subspan(begin, end - begin),
                     g->InWeightsRaw().subspan(begin, end - begin));
    Rng x(v + 1), y(v + 1);
    for (int i = 0; i < 100; ++i) {
      const NodeId expect = full.SampleInNeighbor(v, &x);
      const NodeId got = slice.SampleInNeighbor(0, &y);
      ASSERT_EQ(got, expect == AliasSampler::kNoNeighbor
                         ? AliasSlice::kNoNeighbor
                         : expect);
    }
  }
}

TEST(AliasSamplerTest, MemoryAccounting) {
  GraphBuilder b(3);
  b.AddEdge(0, 2, 1.0);
  b.AddEdge(1, 2, 1.0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  AliasSampler sampler(*g);
  // Two table entries (one per edge) plus the owned CSR offsets snapshot
  // (num_nodes + 1 entries) that decouples incremental copies from the
  // base sampler's graph lifetime.
  EXPECT_EQ(sampler.memory_bytes(),
            2 * (sizeof(double) + sizeof(uint32_t)) + 4 * sizeof(uint64_t));
}

}  // namespace
}  // namespace voteopt::graph
