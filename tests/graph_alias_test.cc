#include "graph/alias_table.h"

#include <gtest/gtest.h>

#include <map>

#include "graph/builder.h"
#include "graph/generators.h"

namespace voteopt::graph {
namespace {

TEST(AliasSamplerTest, ExactProbabilitiesMatchWeights) {
  GraphBuilder b(4);
  b.AddEdge(0, 3, 0.1);
  b.AddEdge(1, 3, 0.3);
  b.AddEdge(2, 3, 0.6);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  AliasSampler sampler(*g);
  // Reconstructed per-slot probabilities must equal the normalized weights.
  EXPECT_NEAR(sampler.Probability(3, 0), 0.1, 1e-12);
  EXPECT_NEAR(sampler.Probability(3, 1), 0.3, 1e-12);
  EXPECT_NEAR(sampler.Probability(3, 2), 0.6, 1e-12);
}

TEST(AliasSamplerTest, EmpiricalFrequenciesMatch) {
  GraphBuilder b(4);
  b.AddEdge(0, 3, 0.2);
  b.AddEdge(1, 3, 0.5);
  b.AddEdge(2, 3, 0.3);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  AliasSampler sampler(*g);
  Rng rng(99);
  std::map<NodeId, int> counts;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    ++counts[sampler.SampleInNeighbor(3, &rng)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.2, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(trials), 0.5, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(trials), 0.3, 0.01);
}

TEST(AliasSamplerTest, NodeWithoutInEdgesReturnsSentinel) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 1.0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  AliasSampler sampler(*g);
  Rng rng(1);
  EXPECT_EQ(sampler.SampleInNeighbor(0, &rng), AliasSampler::kNoNeighbor);
  EXPECT_EQ(sampler.SampleInNeighbor(1, &rng), 0u);
}

TEST(AliasSamplerTest, SingleInNeighborAlwaysSampled) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 0.37);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  AliasSampler sampler(*g);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.SampleInNeighbor(1, &rng), 0u);
  }
}

TEST(AliasSamplerTest, UnnormalizedWeightsSampledProportionally) {
  GraphBuilder b(3);
  b.AddEdge(0, 2, 2.0);
  b.AddEdge(1, 2, 6.0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  AliasSampler sampler(*g);
  EXPECT_NEAR(sampler.Probability(2, 0), 0.25, 1e-12);
  EXPECT_NEAR(sampler.Probability(2, 1), 0.75, 1e-12);
}

TEST(AliasSamplerTest, ProbabilitiesSumToOnePerNode) {
  Rng rng(123);
  InteractionCounts counts;
  Graph g = ErdosRenyiDigraph(50, 400, counts, &rng).NormalizedIncoming();
  AliasSampler sampler(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const size_t deg = g.InNeighbors(v).size();
    if (deg == 0) continue;
    double total = 0.0;
    for (size_t i = 0; i < deg; ++i) total += sampler.Probability(v, i);
    EXPECT_NEAR(total, 1.0, 1e-9) << "node " << v;
  }
}

TEST(AliasSamplerTest, MemoryAccounting) {
  GraphBuilder b(3);
  b.AddEdge(0, 2, 1.0);
  b.AddEdge(1, 2, 1.0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  AliasSampler sampler(*g);
  EXPECT_EQ(sampler.memory_bytes(), 2 * (sizeof(double) + sizeof(uint32_t)));
}

}  // namespace
}  // namespace voteopt::graph
