#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/stats.h"

namespace voteopt {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.Add(rng.Uniform());
  EXPECT_NEAR(stat.mean(), 0.5, 0.01);
  EXPECT_NEAR(stat.variance(), 1.0 / 12.0, 0.005);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const uint64_t x = rng.UniformInt(7);
    EXPECT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values reachable
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(17);
  int hits = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.Add(rng.Normal(2.0, 3.0));
  EXPECT_NEAR(stat.mean(), 2.0, 0.06);
  EXPECT_NEAR(stat.stddev(), 3.0, 0.06);
}

TEST(RngTest, BetaStaysInUnitIntervalWithCorrectMean) {
  Rng rng(23);
  RunningStat stat;
  for (int i = 0; i < 30000; ++i) {
    const double x = rng.Beta(2.0, 5.0);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 1.0);
    stat.Add(x);
  }
  EXPECT_NEAR(stat.mean(), 2.0 / 7.0, 0.01);  // a / (a+b)
}

TEST(RngTest, BetaSymmetricAroundHalf) {
  Rng rng(27);
  RunningStat stat;
  for (int i = 0; i < 30000; ++i) stat.Add(rng.Beta(3.0, 3.0));
  EXPECT_NEAR(stat.mean(), 0.5, 0.01);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(29);
  RunningStat small, large;
  for (int i = 0; i < 20000; ++i) {
    small.Add(static_cast<double>(rng.Poisson(3.0)));
    large.Add(static_cast<double>(rng.Poisson(80.0)));
  }
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 80.0, 0.5);
}

TEST(RngTest, ZipfWithinSupportAndSkewed) {
  Rng rng(31);
  uint64_t ones = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const uint64_t x = rng.Zipf(100, 1.5);
    ASSERT_GE(x, 1u);
    ASSERT_LE(x, 100u);
    ones += (x == 1);
  }
  // Zipf(1.5) over [1,100] puts > 35% of its mass on 1.
  EXPECT_GT(static_cast<double>(ones) / trials, 0.35);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndComplete) {
  Rng rng(37);
  // Dense branch.
  auto dense = rng.SampleWithoutReplacement(10, 10);
  std::set<uint32_t> dense_set(dense.begin(), dense.end());
  EXPECT_EQ(dense_set.size(), 10u);
  // Sparse branch.
  auto sparse = rng.SampleWithoutReplacement(10000, 20);
  std::set<uint32_t> sparse_set(sparse.begin(), sparse.end());
  EXPECT_EQ(sparse_set.size(), 20u);
  for (uint32_t v : sparse) EXPECT_LT(v, 10000u);
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.Fork();
  EXPECT_NE(parent.Next(), child.Next());
}

}  // namespace
}  // namespace voteopt
