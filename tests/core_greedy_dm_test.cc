#include "core/greedy_dm.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace voteopt::core {
namespace {

using test::MakePaperExample;
using test::MakeRandomInstance;

// ---------------------------------------------------------------------------
// DeltaPropagator: the sparse marginal-gain engine must agree exactly with
// full re-propagation.
// ---------------------------------------------------------------------------

class DeltaPropagatorParamTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(DeltaPropagatorParamTest, DeltaEqualsFullRepropagation) {
  const auto [horizon, seed] = GetParam();
  auto inst = MakeRandomInstance(40, 220, 2, seed);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, horizon, ScoreSpec::Cumulative());

  DeltaPropagator propagator(ev);
  const std::vector<graph::NodeId> base_seeds = {3, 17};
  propagator.SetSeeds(base_seeds);
  const auto base = model.PropagateWithSeeds(inst.state.campaigns[0],
                                             base_seeds, horizon);

  std::vector<graph::NodeId> touched;
  for (graph::NodeId w : {0u, 5u, 11u, 25u, 39u}) {
    const auto& delta = propagator.ComputeDelta(w, &touched);
    auto with_w = base_seeds;
    with_w.push_back(w);
    const auto full =
        model.PropagateWithSeeds(inst.state.campaigns[0], with_w, horizon);
    // Reconstruct full vector from sparse delta.
    std::vector<double> reconstructed = base;
    for (graph::NodeId v : touched) reconstructed[v] += delta[v];
    for (uint32_t v = 0; v < 40; ++v) {
      ASSERT_NEAR(reconstructed[v], full[v], 1e-10)
          << "w=" << w << " v=" << v << " t=" << horizon;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    HorizonsAndSeeds, DeltaPropagatorParamTest,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 5u, 12u),
                       ::testing::Values(101u, 202u, 303u)));

TEST(DeltaPropagatorTest, GainOfExistingSeedIsZero) {
  auto inst = MakeRandomInstance(30, 150, 2, 7);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 5, ScoreSpec::Cumulative());
  DeltaPropagator propagator(ev);
  propagator.SetSeeds({4});
  EXPECT_NEAR(propagator.MarginalGain(4), 0.0, 1e-12);
}

TEST(DeltaPropagatorTest, MarginalGainMatchesScoreDifference) {
  auto inst = MakeRandomInstance(35, 180, 3, 9);
  opinion::FJModel model(inst.graph);
  for (ScoreSpec spec :
       {ScoreSpec::Cumulative(), ScoreSpec::Plurality(),
        ScoreSpec::PApproval(2), ScoreSpec::Copeland(),
        ScoreSpec::PositionalPApproval({1.0, 0.4, 0.1})}) {
    ScoreEvaluator ev(model, inst.state, 0, 6, spec);
    DeltaPropagator propagator(ev);
    propagator.SetSeeds({2});
    for (graph::NodeId w : {6u, 13u, 30u}) {
      const double gain = propagator.MarginalGain(w);
      const double expected =
          ev.EvaluateSeeds({2, w}) - ev.EvaluateSeeds({2});
      EXPECT_NEAR(gain, expected, 1e-9)
          << voting::ScoreKindName(spec.kind) << " w=" << w;
    }
  }
}

// ---------------------------------------------------------------------------
// Greedy selection.
// ---------------------------------------------------------------------------

TEST(GreedyDMTest, PaperExampleBestSingleSeeds) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  // Example 2: user 1 (node 0) maximizes cumulative; user 3 (node 2)
  // maximizes plurality and achieves Copeland 1.
  {
    ScoreEvaluator ev(model, ex.state, 0, 1, ScoreSpec::Cumulative());
    const auto result = GreedyDMSelect(ev, 1);
    EXPECT_EQ(result.seeds, std::vector<graph::NodeId>{0});
    EXPECT_NEAR(result.score, 3.30, 1e-9);
  }
  {
    ScoreEvaluator ev(model, ex.state, 0, 1, ScoreSpec::Plurality());
    const auto result = GreedyDMSelect(ev, 1);
    EXPECT_EQ(result.seeds, std::vector<graph::NodeId>{2});
    EXPECT_DOUBLE_EQ(result.score, 4.0);
  }
  {
    ScoreEvaluator ev(model, ex.state, 0, 1, ScoreSpec::Copeland());
    const auto result = GreedyDMSelect(ev, 1);
    EXPECT_DOUBLE_EQ(result.score, 1.0);  // node 2 or 3 both achieve 1
  }
}

TEST(GreedyDMTest, FirstSeedIsBruteForceBest) {
  auto inst = MakeRandomInstance(30, 160, 2, 41);
  opinion::FJModel model(inst.graph);
  for (ScoreSpec spec : {ScoreSpec::Cumulative(), ScoreSpec::Plurality()}) {
    ScoreEvaluator ev(model, inst.state, 0, 4, spec);
    const auto result = GreedyDMSelect(ev, 1);
    double best = -1.0;
    for (graph::NodeId v = 0; v < 30; ++v) {
      best = std::max(best, ev.EvaluateSeeds({v}));
    }
    EXPECT_NEAR(result.score, best, 1e-9) << voting::ScoreKindName(spec.kind);
  }
}

TEST(GreedyDMTest, CelfMatchesPlainGreedyOnCumulative) {
  auto inst = MakeRandomInstance(40, 200, 2, 43);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 5, ScoreSpec::Cumulative());
  DMOptions celf_opts;
  celf_opts.use_celf = true;
  DMOptions plain_opts;
  plain_opts.use_celf = false;
  const auto celf = GreedyDMSelect(ev, 5, celf_opts);
  const auto plain = GreedyDMSelect(ev, 5, plain_opts);
  EXPECT_EQ(celf.seeds, plain.seeds);
  EXPECT_NEAR(celf.score, plain.score, 1e-9);
  // CELF must do no more evaluations than plain greedy.
  EXPECT_LE(celf.diagnostics.at("evaluations"),
            plain.diagnostics.at("evaluations"));
}

TEST(GreedyDMTest, ScoreNondecreasingInK) {
  auto inst = MakeRandomInstance(35, 170, 3, 47);
  opinion::FJModel model(inst.graph);
  for (ScoreSpec spec : {ScoreSpec::Cumulative(), ScoreSpec::Plurality(),
                         ScoreSpec::Copeland()}) {
    ScoreEvaluator ev(model, inst.state, 1, 4, spec);
    double previous = -1.0;
    for (uint32_t k : {1u, 2u, 4u, 8u}) {
      const auto result = GreedyDMSelect(ev, k);
      EXPECT_EQ(result.seeds.size(), k);
      EXPECT_GE(result.score, previous - 1e-9)
          << voting::ScoreKindName(spec.kind) << " k=" << k;
      previous = result.score;
    }
  }
}

TEST(GreedyDMTest, SeedsAreDistinct) {
  auto inst = MakeRandomInstance(25, 120, 2, 53);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 3, ScoreSpec::Cumulative());
  const auto result = GreedyDMSelect(ev, 10);
  std::set<graph::NodeId> unique(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(unique.size(), result.seeds.size());
}

TEST(GreedyDMTest, KLargerThanNClamps) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  ScoreEvaluator ev(model, ex.state, 0, 1, ScoreSpec::Cumulative());
  const auto result = GreedyDMSelect(ev, 100);
  EXPECT_EQ(result.seeds.size(), 4u);
  EXPECT_NEAR(result.score, 4.0, 1e-9);  // everyone seeded at opinion 1
}

TEST(GreedyDMTest, CandidatePoolRestrictsSelection) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  ScoreEvaluator ev(model, ex.state, 0, 1, ScoreSpec::Cumulative());
  DMOptions options;
  options.candidate_pool = {1, 3};
  const auto result = GreedyDMSelect(ev, 2, options);
  std::set<graph::NodeId> seeds(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(seeds, (std::set<graph::NodeId>{1, 3}));
}

TEST(GreedyDMTest, GreedyMatchesBruteForcePairOnCumulative) {
  // Submodular + monotone: greedy must be within (1-1/e) of optimum; on
  // this instance we check the stronger property that it finds the true
  // best pair (typical for such small instances).
  auto inst = MakeRandomInstance(18, 80, 2, 59);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 3, ScoreSpec::Cumulative());
  const auto greedy = GreedyDMSelect(ev, 2);
  double best = -1.0;
  for (graph::NodeId a = 0; a < 18; ++a) {
    for (graph::NodeId b = a + 1; b < 18; ++b) {
      best = std::max(best, ev.EvaluateSeeds({a, b}));
    }
  }
  constexpr double kOneMinusInvE = 0.6321205588285577;
  EXPECT_GE(greedy.score, kOneMinusInvE * best - 1e-9);
}

}  // namespace
}  // namespace voteopt::core
