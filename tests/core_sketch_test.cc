#include "core/sketch.h"

#include "core/accuracy.h"

#include <gtest/gtest.h>

#include "core/estimated_greedy.h"
#include "core/greedy_dm.h"
#include "core/rs_greedy.h"
#include "test_fixtures.h"
#include "util/stats.h"

namespace voteopt::core {
namespace {

using test::MakePaperExample;
using test::MakeRandomInstance;

TEST(SketchSetTest, HasThetaWalksWithScaledWeights) {
  auto inst = MakeRandomInstance(30, 150, 2, 3);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 4, voting::ScoreSpec::Cumulative());
  Rng rng(5);
  auto walks = BuildSketchSet(ev, 500, &rng);
  EXPECT_EQ(walks->num_walks(), 500u);
  // Start weights are n * lambda_v / theta; they sum to n.
  double total = 0.0;
  for (graph::NodeId v = 0; v < 30; ++v) {
    if (walks->Lambda(v) > 0) total += walks->StartWeight(v);
    EXPECT_NEAR(walks->StartWeight(v), 30.0 * walks->Lambda(v) / 500.0,
                1e-12);
  }
  EXPECT_NEAR(total, 30.0, 1e-9);
}

TEST(SketchSetTest, CumulativeEstimatorIsUnbiased) {
  // Eq. 35: F-hat = (n/theta) * sum of walk values approximates F(empty).
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  ScoreEvaluator ev(model, ex.state, 0, 1, voting::ScoreSpec::Cumulative());
  const double exact = 2.55;  // Table I row {}
  Rng rng(7);
  RunningStat stat;
  for (int rep = 0; rep < 200; ++rep) {
    auto walks = BuildSketchSet(ev, 64, &rng);
    double estimate = 0.0;
    for (graph::NodeId v = 0; v < 4; ++v) {
      if (walks->Lambda(v) > 0) {
        estimate += walks->StartWeight(v) * walks->EstimatedOpinion(v);
      }
    }
    stat.Add(estimate);
  }
  EXPECT_NEAR(stat.mean(), exact, 0.05);
}

TEST(ThetaFormulaTest, MonotoneInParameters) {
  // Eq. 40: theta grows as epsilon shrinks, as OPT shrinks, as l grows.
  const double base = ThetaForCumulative(1000, 10, 0.1, 1.0, 500.0);
  EXPECT_GT(ThetaForCumulative(1000, 10, 0.05, 1.0, 500.0), base);
  EXPECT_GT(ThetaForCumulative(1000, 10, 0.1, 2.0, 500.0), base);
  EXPECT_GT(ThetaForCumulative(1000, 10, 0.1, 1.0, 250.0), base);
  EXPECT_GT(base, 0.0);
}

TEST(OptLowerBoundTest, AtLeastEmptySetScoreAndK) {
  auto inst = MakeRandomInstance(40, 200, 2, 11);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 4, voting::ScoreSpec::Cumulative());
  const double lb = CumulativeOptLowerBound(ev, 25);
  EXPECT_GE(lb, 25.0);  // k seeds pin k opinions at 1
  EXPECT_GE(lb, ev.EvaluateSeeds({}) - 1e-9);
  EXPECT_LE(lb, 40.0);  // OPT <= n
}

TEST(OptLowerBoundTest, RefinementNeverLowersBound) {
  auto inst = MakeRandomInstance(30, 150, 2, 13);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 3, voting::ScoreSpec::Cumulative());
  const double fallback = CumulativeOptLowerBound(ev, 3);
  Rng rng(17);
  const double refined = RefineOptLowerBound(ev, 3, 0.2, fallback, &rng);
  EXPECT_GE(refined, fallback);
  EXPECT_LE(refined, 30.0 + 1e-9);
}

TEST(ThetaConvergenceTest, ReturnsWithinCap) {
  auto inst = MakeRandomInstance(40, 200, 3, 19);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 3, voting::ScoreSpec::Plurality());
  const uint64_t theta =
      EstimateThetaByConvergence(ev, 3, 32, 4096, 0.05, 23);
  EXPECT_GE(theta, 32u);
  EXPECT_LE(theta, 4096u);
}

TEST(RSGreedyTest, PaperExampleFindsGoodSeed) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  ScoreEvaluator ev(model, ex.state, 0, 1, voting::ScoreSpec::Cumulative());
  RSOptions options;
  options.theta_override = 4000;
  const auto result = RSGreedySelect(ev, 1, options);
  ASSERT_EQ(result.seeds.size(), 1u);
  EXPECT_EQ(result.seeds[0], 0u);  // node 0 is the best cumulative seed
  EXPECT_NEAR(result.score, 3.30, 1e-9);
}

TEST(RSGreedyTest, CumulativeThetaFromTheoremThirteen) {
  auto inst = MakeRandomInstance(50, 250, 2, 29);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 4, voting::ScoreSpec::Cumulative());
  RSOptions options;
  options.epsilon = 0.3;  // keep theta small for the test
  options.theta_cap = 1u << 16;
  const auto result = RSGreedySelect(ev, 3, options);
  EXPECT_EQ(result.seeds.size(), 3u);
  EXPECT_GT(result.diagnostics.at("theta"), 0.0);
  EXPECT_GT(result.diagnostics.at("opt_lower_bound"), 0.0);
  EXPECT_GE(result.score, ev.EvaluateSeeds({}));
}

TEST(RSGreedyTest, RankScoresUseConvergenceHeuristic) {
  auto inst = MakeRandomInstance(40, 200, 3, 31);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 3, voting::ScoreSpec::Copeland());
  RSOptions options;
  options.theta_start = 64;
  options.theta_cap = 2048;
  const auto result = RSGreedySelect(ev, 2, options);
  EXPECT_EQ(result.seeds.size(), 2u);
  EXPECT_GE(result.diagnostics.at("theta"), 64.0);
  EXPECT_LE(result.diagnostics.at("theta"), 2048.0);
}

TEST(RSGreedyTest, LargerThetaTracksExactGreedyBetter) {
  auto inst = MakeRandomInstance(60, 320, 2, 37, /*max_stubbornness=*/0.8);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 4, voting::ScoreSpec::Cumulative());
  const double exact = GreedyDMSelect(ev, 3).score;

  auto run = [&](uint64_t theta) {
    RSOptions options;
    options.theta_override = theta;
    return RSGreedySelect(ev, 3, options).score;
  };
  // Average over a few runs to smooth randomness.
  double small = 0.0, large = 0.0;
  for (uint64_t s = 0; s < 5; ++s) {
    RSOptions o_small, o_large;
    o_small.theta_override = 60;
    o_small.rng_seed = 100 + s;
    o_large.theta_override = 6000;
    o_large.rng_seed = 200 + s;
    small += RSGreedySelect(ev, 3, o_small).score;
    large += RSGreedySelect(ev, 3, o_large).score;
  }
  small /= 5;
  large /= 5;
  EXPECT_GE(large, small - 0.5);  // more sketches should not be much worse
  EXPECT_GE(large, 0.93 * exact);
  (void)run;
}

}  // namespace
}  // namespace voteopt::core
