#include "graph/generators.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace voteopt::graph {
namespace {

InteractionCounts DefaultCounts() {
  InteractionCounts c;
  c.kind = InteractionCounts::Kind::kPoisson;
  c.mean = 5.0;
  return c;
}

TEST(GeneratorsTest, ErdosRenyiHasRequestedEdges) {
  Rng rng(1);
  Graph g = ErdosRenyiDigraph(100, 500, DefaultCounts(), &rng);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 500u);
}

TEST(GeneratorsTest, ErdosRenyiCapsAtMaxPossible) {
  Rng rng(2);
  Graph g = ErdosRenyiDigraph(5, 1000, DefaultCounts(), &rng);
  EXPECT_EQ(g.num_edges(), 20u);  // 5 * 4 directed pairs
}

TEST(GeneratorsTest, ErdosRenyiDeterministicInSeed) {
  Rng rng1(7), rng2(7);
  Graph a = ErdosRenyiDigraph(60, 300, DefaultCounts(), &rng1);
  Graph b = ErdosRenyiDigraph(60, 300, DefaultCounts(), &rng2);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    ASSERT_EQ(a.OutDegree(v), b.OutDegree(v));
  }
}

TEST(GeneratorsTest, BarabasiAlbertIsBidirected) {
  Rng rng(3);
  Graph g = BarabasiAlbert(200, 3, DefaultCounts(), &rng);
  EXPECT_EQ(g.num_nodes(), 200u);
  EXPECT_EQ(g.num_edges() % 2, 0u);
  // Every edge has its reverse.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      bool reverse = false;
      for (NodeId w : g.OutNeighbors(v)) reverse |= (w == u);
      ASSERT_TRUE(reverse) << u << "->" << v;
    }
  }
}

TEST(GeneratorsTest, BarabasiAlbertHasSkewedDegrees) {
  Rng rng(4);
  Graph g = BarabasiAlbert(1000, 2, DefaultCounts(), &rng);
  uint64_t max_degree = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_degree = std::max(max_degree, g.OutDegree(v));
  }
  const double avg = static_cast<double>(g.num_edges()) / g.num_nodes();
  // Preferential attachment produces hubs far above the average degree.
  EXPECT_GT(static_cast<double>(max_degree), 5.0 * avg);
}

TEST(GeneratorsTest, WattsStrogatzRingDegreeWithoutRewire) {
  Rng rng(5);
  Graph g = WattsStrogatz(50, 4, 0.0, DefaultCounts(), &rng);
  // Undirected ring with k/2 = 2 neighbors each side -> out-degree 4
  // (bidirected).
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.OutDegree(v), 4u) << "node " << v;
  }
}

TEST(GeneratorsTest, WattsStrogatzRewirePreservesEdgeCount) {
  Rng rng(6);
  Graph g0 = WattsStrogatz(80, 4, 0.0, DefaultCounts(), &rng);
  Rng rng2(6);
  Graph g1 = WattsStrogatz(80, 4, 0.5, DefaultCounts(), &rng2);
  EXPECT_EQ(g0.num_edges(), g1.num_edges());
}

TEST(GeneratorsTest, PowerLawDigraphInDegreeSkew) {
  Rng rng(8);
  Graph g = PowerLawDigraph(2000, 3.0, 1.2, DefaultCounts(), &rng);
  uint64_t max_in = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_in = std::max(max_in, g.InDegree(v));
  }
  const double avg_in = static_cast<double>(g.num_edges()) / g.num_nodes();
  EXPECT_GT(static_cast<double>(max_in), 10.0 * avg_in);
}

TEST(GeneratorsTest, InteractionCountsAlwaysPositive) {
  Rng rng(9);
  for (auto kind : {InteractionCounts::Kind::kConstant,
                    InteractionCounts::Kind::kPoisson,
                    InteractionCounts::Kind::kZipf}) {
    InteractionCounts c;
    c.kind = kind;
    c.mean = 4.0;
    for (int i = 0; i < 1000; ++i) {
      EXPECT_GT(c.Draw(&rng), 0.0);
    }
  }
}

TEST(GeneratorsTest, NormalizedGeneratedGraphIsStochastic) {
  Rng rng(10);
  Graph g =
      PowerLawDigraph(500, 2.0, 1.3, DefaultCounts(), &rng).NormalizedIncoming();
  EXPECT_TRUE(g.IsColumnStochastic());
}

}  // namespace
}  // namespace voteopt::graph
