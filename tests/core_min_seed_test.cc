#include "core/min_seed.h"

#include <gtest/gtest.h>

#include "core/greedy_dm.h"
#include "test_fixtures.h"

namespace voteopt::core {
namespace {

using test::MakePaperExample;
using test::MakeRandomInstance;

SeedSelector ExactGreedy() {
  return [](const ScoreEvaluator& ev, uint32_t k) {
    return GreedyDMSelect(ev, k);
  };
}

TEST(TargetWinsTest, PaperExample) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  ScoreEvaluator ev(model, ex.state, 0, 1, voting::ScoreSpec::Plurality());
  // Without seeds both candidates have plurality 2: no strict win.
  EXPECT_FALSE(TargetWins(ev, {}));
  // Seeding node 2 gives 4 vs 0.
  EXPECT_TRUE(TargetWins(ev, {2}));
}

TEST(MinSeedsTest, PaperExampleNeedsOneSeedForPlurality) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  ScoreEvaluator ev(model, ex.state, 0, 1, voting::ScoreSpec::Plurality());
  const auto result = MinSeedsToWin(ev, ExactGreedy());
  ASSERT_TRUE(result.achievable);
  EXPECT_EQ(result.k_star, 1u);
  EXPECT_EQ(result.seeds.size(), 1u);
  EXPECT_TRUE(TargetWins(ev, result.seeds));
}

TEST(MinSeedsTest, ZeroWhenAlreadyWinning) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  // Swap roles: evaluate candidate c2 (index 1), which wins cumulative
  // 2.78 vs 2.55 with no seeds at all.
  ScoreEvaluator ev(model, ex.state, 1, 1, voting::ScoreSpec::Cumulative());
  const auto result = MinSeedsToWin(ev, ExactGreedy());
  ASSERT_TRUE(result.achievable);
  EXPECT_EQ(result.k_star, 0u);
  EXPECT_TRUE(result.seeds.empty());
}

TEST(MinSeedsTest, MatchesExhaustiveSearchOverK) {
  // k* from the binary search must equal the smallest k whose greedy seed
  // set wins (Algorithm 2 semantics, given the same selector).
  for (uint64_t seed : {71u, 73u, 79u}) {
    auto inst = MakeRandomInstance(20, 110, 2, seed);
    opinion::FJModel model(inst.graph);
    ScoreEvaluator ev(model, inst.state, 0, 4, voting::ScoreSpec::Cumulative());
    const auto result = MinSeedsToWin(ev, ExactGreedy());
    if (!result.achievable) continue;
    uint32_t smallest = 0;
    if (!TargetWins(ev, {})) {
      smallest = 21;  // sentinel
      for (uint32_t k = 1; k <= 20; ++k) {
        if (TargetWins(ev, GreedyDMSelect(ev, k).seeds)) {
          smallest = k;
          break;
        }
      }
    }
    EXPECT_EQ(result.k_star, smallest) << "instance seed " << seed;
  }
}

TEST(MinSeedsTest, UnachievableWhenCompetitorSaturated) {
  // Competitor is fully stubborn at opinion 1 everywhere: cumulative score
  // n can at best be tied, never strictly beaten.
  auto inst = MakeRandomInstance(12, 60, 2, 83);
  for (uint32_t v = 0; v < 12; ++v) {
    inst.state.campaigns[1].initial_opinions[v] = 1.0;
    inst.state.campaigns[1].stubbornness[v] = 1.0;
  }
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 3, voting::ScoreSpec::Cumulative());
  const auto result = MinSeedsToWin(ev, ExactGreedy());
  EXPECT_FALSE(result.achievable);
  EXPECT_EQ(result.k_star, 12u);  // reports the exhausted budget
}

TEST(MinSeedsTest, RespectsKMax) {
  auto inst = MakeRandomInstance(20, 100, 2, 89);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 3, voting::ScoreSpec::Cumulative());
  const auto result = MinSeedsToWin(ev, ExactGreedy(), /*k_max=*/2);
  if (result.achievable) {
    EXPECT_LE(result.k_star, 2u);
  } else {
    EXPECT_EQ(result.k_star, 2u);
  }
}

TEST(MinSeedsTest, BinarySearchUsesLogCalls) {
  auto inst = MakeRandomInstance(64, 320, 2, 97);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 3, voting::ScoreSpec::Cumulative());
  const auto result = MinSeedsToWin(ev, ExactGreedy());
  // 1 feasibility call + at most ceil(log2(64)) = 6 bisection steps.
  EXPECT_LE(result.selector_calls, 8u);
}

}  // namespace
}  // namespace voteopt::core
