#include "core/min_seed.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/estimated_greedy.h"
#include "core/greedy_dm.h"
#include "core/sketch.h"
#include "test_fixtures.h"

namespace voteopt::core {
namespace {

using test::MakePaperExample;
using test::MakeRandomInstance;

SeedSelector ExactGreedy() {
  return [](const ScoreEvaluator& ev, uint32_t k) {
    return GreedyDMSelect(ev, k);
  };
}

/// The serve-style selection substrate: one frozen sketch, reset (not
/// rebuilt) before every selection. Both min-seed drivers below run over
/// the same sketch, so their answers must coincide exactly.
struct SketchSubstrate {
  std::unique_ptr<WalkSet> sketch;

  explicit SketchSubstrate(const ScoreEvaluator& ev, uint64_t theta,
                           uint64_t master_seed) {
    SketchBuildOptions build;
    build.num_threads = 2;
    build.block_size = 512;
    sketch = BuildSketchSet(ev, theta, master_seed, build);
  }

  /// Per-budget selector for the binary-search driver.
  SeedSelector BudgetSelector() {
    return [this](const ScoreEvaluator& ev, uint32_t k) {
      sketch->ResetValues(ev.target_campaign().initial_opinions);
      EstimatedGreedyOptions options;
      options.evaluate_exact = false;
      return EstimatedGreedySelect(ev, k, sketch.get(), options);
    };
  }

  /// Prefix-reporting selector for the single-pass driver.
  PrefixSelector SinglePassSelector() {
    return [this](const ScoreEvaluator& ev, uint32_t k,
                  const PrefixCallback& on_prefix) {
      sketch->ResetValues(ev.target_campaign().initial_opinions);
      EstimatedGreedyOptions options;
      options.evaluate_exact = false;
      options.on_prefix = ToGreedyPrefixHook(on_prefix);
      return EstimatedGreedySelect(ev, k, sketch.get(), options);
    };
  }
};

TEST(TargetWinsTest, PaperExample) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  ScoreEvaluator ev(model, ex.state, 0, 1, voting::ScoreSpec::Plurality());
  // Without seeds both candidates have plurality 2: no strict win.
  EXPECT_FALSE(TargetWins(ev, {}));
  // Seeding node 2 gives 4 vs 0.
  EXPECT_TRUE(TargetWins(ev, {2}));
}

TEST(MinSeedsTest, PaperExampleNeedsOneSeedForPlurality) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  ScoreEvaluator ev(model, ex.state, 0, 1, voting::ScoreSpec::Plurality());
  const auto result = MinSeedsToWin(ev, ExactGreedy());
  ASSERT_TRUE(result.achievable);
  EXPECT_EQ(result.k_star, 1u);
  EXPECT_EQ(result.seeds.size(), 1u);
  EXPECT_TRUE(TargetWins(ev, result.seeds));
}

TEST(MinSeedsTest, ZeroWhenAlreadyWinning) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  // Swap roles: evaluate candidate c2 (index 1), which wins cumulative
  // 2.78 vs 2.55 with no seeds at all.
  ScoreEvaluator ev(model, ex.state, 1, 1, voting::ScoreSpec::Cumulative());
  const auto result = MinSeedsToWin(ev, ExactGreedy());
  ASSERT_TRUE(result.achievable);
  EXPECT_EQ(result.k_star, 0u);
  EXPECT_TRUE(result.seeds.empty());
}

TEST(MinSeedsTest, MatchesExhaustiveSearchOverK) {
  // k* from the binary search must equal the smallest k whose greedy seed
  // set wins (Algorithm 2 semantics, given the same selector).
  for (uint64_t seed : {71u, 73u, 79u}) {
    auto inst = MakeRandomInstance(20, 110, 2, seed);
    opinion::FJModel model(inst.graph);
    ScoreEvaluator ev(model, inst.state, 0, 4, voting::ScoreSpec::Cumulative());
    const auto result = MinSeedsToWin(ev, ExactGreedy());
    if (!result.achievable) continue;
    uint32_t smallest = 0;
    if (!TargetWins(ev, {})) {
      smallest = 21;  // sentinel
      for (uint32_t k = 1; k <= 20; ++k) {
        if (TargetWins(ev, GreedyDMSelect(ev, k).seeds)) {
          smallest = k;
          break;
        }
      }
    }
    EXPECT_EQ(result.k_star, smallest) << "instance seed " << seed;
  }
}

TEST(MinSeedsTest, UnachievableWhenCompetitorSaturated) {
  // Competitor is fully stubborn at opinion 1 everywhere: cumulative score
  // n can at best be tied, never strictly beaten.
  auto inst = MakeRandomInstance(12, 60, 2, 83);
  for (uint32_t v = 0; v < 12; ++v) {
    inst.state.campaigns[1].initial_opinions[v] = 1.0;
    inst.state.campaigns[1].stubbornness[v] = 1.0;
  }
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 3, voting::ScoreSpec::Cumulative());
  const auto result = MinSeedsToWin(ev, ExactGreedy());
  EXPECT_FALSE(result.achievable);
  EXPECT_EQ(result.k_star, 12u);  // reports the exhausted budget
}

TEST(MinSeedsTest, RespectsKMax) {
  auto inst = MakeRandomInstance(20, 100, 2, 89);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 3, voting::ScoreSpec::Cumulative());
  const auto result = MinSeedsToWin(ev, ExactGreedy(), /*k_max=*/2);
  if (result.achievable) {
    EXPECT_LE(result.k_star, 2u);
  } else {
    EXPECT_EQ(result.k_star, 2u);
  }
}

TEST(MinSeedsTest, BinarySearchUsesLogCalls) {
  auto inst = MakeRandomInstance(64, 320, 2, 97);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 3, voting::ScoreSpec::Cumulative());
  const auto result = MinSeedsToWin(ev, ExactGreedy());
  // 1 feasibility call + at most ceil(log2(64)) = 6 bisection steps.
  EXPECT_LE(result.selector_calls, 8u);
}

TEST(MinSeedsTest, GreedyBudgetsNestOnAFixedSketch) {
  // The invariant both fast paths stand on: on one frozen sketch, the
  // greedy seed set at budget k is a PREFIX of the seed set at k' > k.
  for (const auto kind :
       {voting::ScoreKind::kCumulative, voting::ScoreKind::kPlurality}) {
    auto inst = MakeRandomInstance(40, 220, 2, 111);
    opinion::FJModel model(inst.graph);
    voting::ScoreSpec spec;
    spec.kind = kind;
    ScoreEvaluator ev(model, inst.state, 0, 4, spec);
    SketchSubstrate substrate(ev, /*theta=*/4096, /*master_seed=*/13);
    const SeedSelector select = substrate.BudgetSelector();

    const auto at_12 = select(ev, 12).seeds;
    ASSERT_EQ(at_12.size(), 12u);
    for (const uint32_t k : {1u, 3u, 7u, 12u}) {
      const auto at_k = select(ev, k).seeds;
      ASSERT_EQ(at_k.size(), k) << voting::ScoreKindName(kind);
      EXPECT_EQ(at_k, std::vector<graph::NodeId>(at_12.begin(),
                                                 at_12.begin() + k))
          << voting::ScoreKindName(kind) << " budget " << k;
    }
  }
}

TEST(MinSeedsTest, SinglePassMatchesBinarySearch) {
  // Same sketch, same greedy: the single-pass driver must return exactly
  // the binary search's k*, seeds, and achievability — with one selector
  // call instead of 1 + O(log k).
  uint32_t covered_achievable = 0;
  for (const uint64_t seed : {211u, 223u, 227u, 229u, 233u}) {
    auto inst = MakeRandomInstance(32, 170, 2, seed);
    opinion::FJModel model(inst.graph);
    for (const auto kind :
         {voting::ScoreKind::kCumulative, voting::ScoreKind::kPlurality}) {
      voting::ScoreSpec spec;
      spec.kind = kind;
      ScoreEvaluator ev(model, inst.state, 0, 3, spec);
      SketchSubstrate substrate(ev, /*theta=*/4096, /*master_seed=*/seed);

      const MinSeedResult searched =
          MinSeedsToWin(ev, substrate.BudgetSelector());
      const MinSeedResult single =
          MinSeedsToWinSinglePass(ev, substrate.SinglePassSelector());

      EXPECT_EQ(single.achievable, searched.achievable)
          << voting::ScoreKindName(kind) << " seed " << seed;
      EXPECT_EQ(single.k_star, searched.k_star)
          << voting::ScoreKindName(kind) << " seed " << seed;
      EXPECT_EQ(single.seeds, searched.seeds)
          << voting::ScoreKindName(kind) << " seed " << seed;
      EXPECT_LE(single.selector_calls, 1u);
      if (searched.achievable && searched.k_star > 0) {
        ++covered_achievable;
        EXPECT_GE(searched.selector_calls, 2u);  // the path being replaced
      }
    }
  }
  // The sweep must actually exercise non-trivial instances.
  EXPECT_GT(covered_achievable, 0u);
}

TEST(MinSeedsTest, SinglePassZeroWhenAlreadyWinning) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  ScoreEvaluator ev(model, ex.state, 1, 1, voting::ScoreSpec::Cumulative());
  SketchSubstrate substrate(ev, /*theta=*/2048, /*master_seed=*/5);
  const auto result =
      MinSeedsToWinSinglePass(ev, substrate.SinglePassSelector());
  ASSERT_TRUE(result.achievable);
  EXPECT_EQ(result.k_star, 0u);
  EXPECT_TRUE(result.seeds.empty());
  EXPECT_EQ(result.selector_calls, 0u);
}

TEST(MinSeedsTest, SinglePassUnachievableReportsExhaustedBudget) {
  auto inst = MakeRandomInstance(12, 60, 2, 83);
  for (uint32_t v = 0; v < 12; ++v) {
    inst.state.campaigns[1].initial_opinions[v] = 1.0;
    inst.state.campaigns[1].stubbornness[v] = 1.0;
  }
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 3, voting::ScoreSpec::Cumulative());
  SketchSubstrate substrate(ev, /*theta=*/2048, /*master_seed=*/7);
  const auto result = MinSeedsToWinSinglePass(
      ev, substrate.SinglePassSelector(), /*k_max=*/8);
  EXPECT_FALSE(result.achievable);
  EXPECT_EQ(result.k_star, 8u);
  EXPECT_EQ(result.selector_calls, 1u);
}

}  // namespace
}  // namespace voteopt::core
