// Golden coverage for the wire codec (serve/protocol.{h,cc}): the JSON →
// Request → JSON and Response → JSON → Response round trips across every
// query kind, every voting rule, and the error vocabulary — plus the
// pinned v1 fixture file, which must keep parsing bit-identically forever
// (the protocol-version negotiation contract of docs/PROTOCOL.md).
#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#ifndef VOTEOPT_SOURCE_DIR
#define VOTEOPT_SOURCE_DIR "."
#endif

namespace voteopt::serve {
namespace {

std::vector<std::string> ReadFixtureLines(const std::string& name) {
  const std::string path =
      std::string(VOTEOPT_SOURCE_DIR) + "/tests/data/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    lines.push_back(line);
  }
  return lines;
}

/// The canonical-form projection: parse, re-encode. Stable under repeated
/// application — the codec's round-trip invariant.
std::string Canonical(const std::string& line) {
  auto request = ParseRequest(line);
  EXPECT_TRUE(request.ok()) << line << ": " << request.status().ToString();
  return request.ok() ? RequestToJson(*request) : "";
}

// ---------------------------------------------------------------------------
// Pinned v1 fixture: yesterday's clients keep working, byte for byte.
// ---------------------------------------------------------------------------

TEST(ProtocolV1FixtureTest, EveryPinnedRequestStillParses) {
  const auto requests = ReadFixtureLines("protocol_v1_requests.jsonl");
  const auto canonical = ReadFixtureLines("protocol_v1_canonical.jsonl");
  ASSERT_FALSE(requests.empty());
  ASSERT_EQ(requests.size(), canonical.size())
      << "fixture files must pair line for line";
  for (size_t i = 0; i < requests.size(); ++i) {
    auto request = ParseRequest(requests[i]);
    ASSERT_TRUE(request.ok())
        << "v1 fixture line " << i << " no longer parses: "
        << request.status().ToString();
    EXPECT_EQ(request->v, 1u) << "fixture line " << i;
    EXPECT_EQ(RequestToJson(*request), canonical[i])
        << "canonical encoding of fixture line " << i << " drifted";
    // Canonical forms are fixed points of parse→encode.
    EXPECT_EQ(Canonical(canonical[i]), canonical[i]);
  }
}

// ---------------------------------------------------------------------------
// Request round trips across every query kind and rule.
// ---------------------------------------------------------------------------

TEST(RequestRoundTripTest, EveryQueryKindSurvivesParseEncodeParse) {
  const std::vector<std::string> lines = {
      R"({"op": "topk", "v": 2, "k": 5, "method": "DC"})",
      R"({"op": "topk", "k": 5, "rule": "borda", "dataset": "d"})",
      R"({"op": "minseed", "v": 2, "k_max": 40, "method": "GED-T"})",
      R"({"op": "evaluate", "seeds": [9], "override": [[1, 0.5]]})",
      R"({"op": "methodcompare", "v": 2, "k": 4, )"
      R"("methods": ["DM", "RS", "DC"]})",
      R"({"op": "rulesweep", "v": 2, "k": 4, "p": 2})",
      R"({"op": "load", "dataset": "x", "bundle": "/b", "theta": 4096})",
      R"({"op": "unload", "dataset": "x"})",
      R"({"op": "list"})",
  };
  for (const std::string& line : lines) {
    const std::string canonical = Canonical(line);
    EXPECT_EQ(Canonical(canonical), canonical) << line;
  }
}

TEST(RequestRoundTripTest, EveryRuleSurvives) {
  for (const char* rule : {"cumulative", "plurality", "papproval",
                           "positional", "copeland", "borda"}) {
    std::string line = std::string(R"({"op": "topk", "k": 2, "rule": ")") +
                       rule + "\"";
    if (std::string(rule) == "positional") line += R"(, "omega": [1, 0.5])";
    if (std::string(rule) == "papproval") line += R"(, "p": 2)";
    line += "}";
    auto request = ParseRequest(line);
    ASSERT_TRUE(request.ok()) << line;
    EXPECT_EQ(request->rule, rule);
    const std::string canonical = RequestToJson(*request);
    EXPECT_EQ(Canonical(canonical), canonical) << line;
  }
}

TEST(RequestRoundTripTest, TypedBuildersEncodeLikeWireRequests) {
  // A typed-constructor request and its parsed wire twin are
  // indistinguishable — the embedded/served unification in one assert.
  const api::Request built =
      api::Request::TopK(7, voting::ScoreSpec::PApproval(2),
                         baselines::Method::kDegree);
  auto parsed = ParseRequest(
      R"({"op": "topk", "k": 7, "rule": "papproval", "p": 2, )"
      R"("method": "dc"})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(RequestToJson(built), RequestToJson(*parsed));

  const api::Request sweep = api::Request::RuleSweep(9);
  auto parsed_sweep = ParseRequest(R"({"op": "rulesweep", "k": 9})");
  ASSERT_TRUE(parsed_sweep.ok());
  EXPECT_EQ(RequestToJson(sweep), RequestToJson(*parsed_sweep));
}

// ---------------------------------------------------------------------------
// Response round trips across every response shape.
// ---------------------------------------------------------------------------

std::string ReEncode(const std::string& json) {
  auto response = ParseResponse(json);
  EXPECT_TRUE(response.ok()) << json << ": " << response.status().ToString();
  return response.ok() ? response->ToJson() : "";
}

TEST(ResponseRoundTripTest, TopKMinSeedEvaluate) {
  Response topk;
  topk.op = "topk";
  topk.id = "q1";
  topk.dataset = "yelp";
  topk.method = "DC";
  topk.seeds = {1, 2, 3};
  topk.estimated_score = 12.5;
  topk.exact_score = 12.25;
  topk.millis = 3.5;
  EXPECT_EQ(ReEncode(topk.ToJson()), topk.ToJson());

  Response minseed;
  minseed.op = "minseed";
  minseed.dataset = "d";
  minseed.achievable = true;
  minseed.k_star = 17;
  minseed.seeds = {4, 5};
  minseed.exact_score = 99.5;
  minseed.selector_calls = 1;
  EXPECT_EQ(ReEncode(minseed.ToJson()), minseed.ToJson());

  Response evaluate;
  evaluate.op = "evaluate";
  evaluate.dataset = "d";
  evaluate.score = 6.5;
  evaluate.all_scores = {6.5, 2.25};
  evaluate.winner = 0;
  evaluate.millis = 0.125;
  EXPECT_EQ(ReEncode(evaluate.ToJson()), evaluate.ToJson());
}

TEST(ResponseRoundTripTest, MethodCompareAndRuleSweep) {
  Response compare;
  compare.op = "methodcompare";
  compare.dataset = "d";
  compare.method_scores.push_back({"DM", {1, 2}, 10.5, 10.25, 0.5});
  compare.method_scores.push_back({"RS", {2, 1}, 9.5, 9.75, 0.25});
  const std::string json = compare.ToJson();
  EXPECT_EQ(ReEncode(json), json);
  // Selection seconds never reach the wire (reproducibility contract).
  EXPECT_EQ(json.find("seconds"), std::string::npos);
  auto parsed = ParseResponse(json);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->method_scores.size(), 2u);
  EXPECT_EQ(parsed->method_scores[0].method, "DM");
  EXPECT_EQ(parsed->method_scores[0].seeds,
            (std::vector<graph::NodeId>{1, 2}));
  EXPECT_DOUBLE_EQ(parsed->method_scores[0].exact_score, 10.25);
  EXPECT_DOUBLE_EQ(parsed->method_scores[0].seconds, 0.0);  // not carried

  Response sweep;
  sweep.op = "rulesweep";
  sweep.dataset = "d";
  sweep.rule_scores.push_back({"cumulative", {3}, 5.5, 5.25, 0});
  sweep.rule_scores.push_back({"copeland", {4}, 1.0, 1.0, 1});
  const std::string sweep_json = sweep.ToJson();
  EXPECT_EQ(ReEncode(sweep_json), sweep_json);
  auto parsed_sweep = ParseResponse(sweep_json);
  ASSERT_TRUE(parsed_sweep.ok());
  ASSERT_EQ(parsed_sweep->rule_scores.size(), 2u);
  EXPECT_EQ(parsed_sweep->rule_scores[1].rule, "copeland");
  EXPECT_EQ(parsed_sweep->rule_scores[1].winner, 1u);
}

TEST(ResponseRoundTripTest, AdminAndErrorShapes) {
  Response load;
  load.op = "load";
  load.dataset = "yelp";
  DatasetInfo info;
  info.name = "yelp";
  info.num_nodes = 800;
  info.num_candidates = 10;
  info.theta = 262144;
  info.horizon = 20;
  info.target = 3;
  info.sketch_built = true;
  load.datasets.push_back(info);
  EXPECT_EQ(ReEncode(load.ToJson()), load.ToJson());
  auto parsed = ParseResponse(load.ToJson());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->datasets.size(), 1u);
  EXPECT_EQ(parsed->datasets[0].theta, 262144u);
  EXPECT_TRUE(parsed->datasets[0].sketch_built);

  Request request;
  request.op = Request::Op::kEvaluate;
  request.id = "r9";
  const Response error =
      Response::Error(request, Status::OutOfRange("seed id out of range"));
  EXPECT_EQ(ReEncode(error.ToJson()), error.ToJson());
  auto parsed_error = ParseResponse(error.ToJson());
  ASSERT_TRUE(parsed_error.ok());
  EXPECT_FALSE(parsed_error->ok);
  EXPECT_EQ(parsed_error->error, "OutOfRange: seed id out of range");
}

// ---------------------------------------------------------------------------
// v3 observability: the stats verb and the trace side channel.
// ---------------------------------------------------------------------------

TEST(ObservabilityCodecTest, StatsVerbRoundTrips) {
  // Request side: stats is a v3 verb; the canonical form keeps the version.
  auto request = ParseRequest(R"({"op": "stats", "v": 3})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->op, Request::Op::kStats);
  EXPECT_TRUE(IsAdminOp(request->op)) << "stats must be an ordering barrier";
  const std::string canonical = RequestToJson(*request);
  EXPECT_EQ(canonical, R"({"op": "stats", "v": 3})");
  EXPECT_EQ(Canonical(canonical), canonical);

  // Response side: the flat "name{labels}" -> value snapshot survives the
  // wire, including Prometheus-style label punctuation inside key names.
  Response stats;
  stats.op = "stats";
  stats.id = "s1";
  stats.stats[R"(voteopt_queries_total{method="RS",op="topk"})"] = 41;
  stats.stats["voteopt_datasets_hosted"] = 2;
  stats.stats["voteopt_query_seconds_sum{op=\"topk\"}"] = 0.125;
  stats.millis = 0.5;
  const std::string json = stats.ToJson();
  EXPECT_EQ(ReEncode(json), json);
  auto parsed = ParseResponse(json);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->stats.size(), 3u);
  EXPECT_DOUBLE_EQ(
      parsed->stats.at(R"(voteopt_queries_total{method="RS",op="topk"})"), 41);
  EXPECT_DOUBLE_EQ(parsed->stats.at("voteopt_datasets_hosted"), 2);
}

TEST(ObservabilityCodecTest, TraceFieldRoundTrips) {
  // "trace": true survives parse -> encode -> parse; false is the default
  // and therefore omitted from the canonical form.
  auto traced = ParseRequest(R"({"op": "topk", "v": 3, "k": 2, "trace": true})");
  ASSERT_TRUE(traced.ok());
  EXPECT_TRUE(traced->trace);
  const std::string canonical = RequestToJson(*traced);
  EXPECT_NE(canonical.find("\"trace\": true"), std::string::npos);
  EXPECT_EQ(Canonical(canonical), canonical);
  auto untraced = ParseRequest(R"({"op": "topk", "k": 2, "trace": false})");
  ASSERT_TRUE(untraced.ok());
  EXPECT_FALSE(untraced->trace);
  EXPECT_EQ(RequestToJson(*untraced).find("trace"), std::string::npos);
  // Ill-typed trace is rejected, not coerced.
  EXPECT_FALSE(ParseRequest(R"({"op": "topk", "trace": 1})").ok());
}

TEST(ObservabilityCodecTest, TracedDiagnosticsRideBehindMillis) {
  Response response;
  response.op = "topk";
  response.dataset = "d";
  response.seeds = {7, 9};
  response.estimated_score = 4.5;
  response.exact_score = 4.25;
  response.millis = 1.5;
  const std::string untraced_stable = response.ToStableJson();

  response.traced = true;
  response.diagnostics["stage.selection_ms"] = 1.25;
  response.diagnostics["work.gain_evaluations"] = 120;
  const std::string json = response.ToJson();
  // Diagnostics serialize AFTER millis so the stable projection strips
  // both volatile fields in one motion.
  EXPECT_LT(json.find("\"millis\""), json.find("\"diagnostics\""));
  EXPECT_EQ(ReEncode(json), json);
  auto parsed = ParseResponse(json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->traced);
  EXPECT_DOUBLE_EQ(parsed->diagnostics.at("stage.selection_ms"), 1.25);
  EXPECT_DOUBLE_EQ(parsed->diagnostics.at("work.gain_evaluations"), 120);

  // The determinism ledger: traced and untraced answers share one stable
  // form, and trace payloads never leak into it.
  EXPECT_EQ(response.ToStableJson(), untraced_stable);
  EXPECT_EQ(response.ToStableJson().find("diagnostics"), std::string::npos);
  EXPECT_EQ(response.ToStableJson().find("millis"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Error vocabulary: what the codec must reject.
// ---------------------------------------------------------------------------

TEST(CodecErrorTest, VersionNegotiation) {
  EXPECT_EQ(ParseRequest(R"({"op": "topk", "k": 1})")->v, 1u);
  EXPECT_EQ(ParseRequest(R"({"op": "topk", "v": 1, "k": 1})")->v, 1u);
  EXPECT_EQ(ParseRequest(R"({"op": "topk", "v": 2, "k": 1})")->v, 2u);
  EXPECT_EQ(ParseRequest(R"({"op": "topk", "v": 3, "k": 1})")->v, 3u);
  EXPECT_EQ(ParseRequest(R"({"op": "topk", "v": 4, "k": 1})")->v, 4u);
  const auto future = ParseRequest(R"({"op": "topk", "v": 5, "k": 1})");
  ASSERT_FALSE(future.ok());
  EXPECT_EQ(future.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(future.status().message().find("unsupported protocol version"),
            std::string::npos);
  EXPECT_FALSE(ParseRequest(R"({"op": "topk", "v": 0})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op": "topk", "v": -1})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op": "topk", "v": "2"})").ok());
  // The version gate outranks the op check: a future-major request with a
  // verb this server has never heard of gets the version diagnostic (so
  // the client learns what to downgrade to), not "unknown op".
  const auto future_verb =
      ParseRequest(R"({"op": "somenewverb", "v": 5, "x": 1})");
  ASSERT_FALSE(future_verb.ok());
  EXPECT_NE(
      future_verb.status().message().find("unsupported protocol version"),
      std::string::npos);
}

TEST(CodecErrorTest, MethodFieldValidation) {
  EXPECT_EQ(ParseRequest(R"({"op": "topk", "method": "rwr"})")->method,
            baselines::Method::kRWR);
  const auto unknown =
      ParseRequest(R"({"op": "topk", "method": "frobnicate"})");
  ASSERT_FALSE(unknown.ok());
  // The error enumerates the valid roster (satellite of the api redesign).
  for (const baselines::Method method : baselines::AllMethods()) {
    EXPECT_NE(
        unknown.status().message().find(baselines::MethodName(method)),
        std::string::npos);
  }
  EXPECT_FALSE(ParseRequest(R"({"op": "topk", "method": 7})").ok());
  EXPECT_FALSE(
      ParseRequest(R"({"op": "methodcompare", "methods": "DM"})").ok());
  EXPECT_FALSE(
      ParseRequest(R"({"op": "methodcompare", "methods": ["DM", "xx"]})")
          .ok());
}

TEST(CodecErrorTest, MalformedResponsesRejected) {
  EXPECT_FALSE(ParseResponse("").ok());
  EXPECT_FALSE(ParseResponse("not json").ok());
  EXPECT_FALSE(ParseResponse(R"({"ok": true})").ok());          // no op
  EXPECT_FALSE(ParseResponse(R"({"op": "topk"})").ok());        // no ok
  EXPECT_FALSE(ParseResponse(R"({"op": "topk", "ok": 1})").ok());
  EXPECT_FALSE(
      ParseResponse(R"({"op": "topk", "ok": true, "seeds": 3})").ok());
  EXPECT_FALSE(
      ParseResponse(R"({"op": "methodcompare", "ok": true, "methods": [2]})")
          .ok());
}

}  // namespace
}  // namespace voteopt::serve
