#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/options.h"
#include "util/table.h"

namespace voteopt {
namespace {

TEST(TableTest, AlignedOutputContainsAllCells) {
  Table t({"method", "score", "time"});
  t.Add("DM", 12.5, 0.031);
  t.Add("RW", 11.875, 0.002);
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("method"), std::string::npos);
  EXPECT_NE(out.find("DM"), std::string::npos);
  EXPECT_NE(out.find("12.5"), std::string::npos);
  EXPECT_NE(out.find("11.875"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, CsvEscapesCommasAndQuotes) {
  Table t({"name", "value"});
  t.Add(std::string("a,b"), std::string("he said \"hi\""));
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
  EXPECT_NE(os.str().find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, NumTrimsTrailingZeros) {
  EXPECT_EQ(Table::Num(1.5), "1.5");
  EXPECT_EQ(Table::Num(2.0), "2");
  EXPECT_EQ(Table::Num(0.12345, 2), "0.12");
  EXPECT_EQ(Table::Num(std::nan("")), "nan");
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"only"});
  std::ostringstream os;
  t.Print(os);  // must not crash; row padded to 3 cells
  EXPECT_EQ(t.num_rows(), 1u);
}

Options ParseArgs(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  argv.push_back(const_cast<char*>("prog"));
  for (auto& s : storage) argv.push_back(const_cast<char*>(s.c_str()));
  return Options(static_cast<int>(argv.size()), argv.data());
}

TEST(OptionsTest, KeyEqualsValue) {
  Options o = ParseArgs({"--k=100", "--score=plurality"});
  EXPECT_EQ(o.GetInt("k", 0), 100);
  EXPECT_EQ(o.GetString("score", ""), "plurality");
}

TEST(OptionsTest, KeySpaceValue) {
  Options o = ParseArgs({"--scale", "0.5"});
  EXPECT_DOUBLE_EQ(o.GetDouble("scale", 1.0), 0.5);
}

TEST(OptionsTest, BareFlagIsTrue) {
  Options o = ParseArgs({"--csv"});
  EXPECT_TRUE(o.GetBool("csv", false));
  EXPECT_FALSE(o.GetBool("missing", false));
  EXPECT_TRUE(o.Has("csv"));
  EXPECT_FALSE(o.Has("missing"));
}

TEST(OptionsTest, FalseLiterals) {
  Options o = ParseArgs({"--a=false", "--b=0"});
  EXPECT_FALSE(o.GetBool("a", true));
  EXPECT_FALSE(o.GetBool("b", true));
}

TEST(OptionsTest, DefaultsWhenAbsent) {
  Options o = ParseArgs({});
  EXPECT_EQ(o.GetInt("k", 42), 42);
  EXPECT_EQ(o.GetString("x", "dflt"), "dflt");
}

TEST(OptionsTest, IntAndDoubleLists) {
  Options o = ParseArgs({"--k=100,200,500", "--eps=0.05,0.1"});
  EXPECT_EQ(o.GetIntList("k", {}), (std::vector<int64_t>{100, 200, 500}));
  EXPECT_EQ(o.GetDoubleList("eps", {}), (std::vector<double>{0.05, 0.1}));
  EXPECT_EQ(o.GetIntList("missing", {7}), (std::vector<int64_t>{7}));
}

TEST(OptionsTest, PositionalArguments) {
  Options o = ParseArgs({"input.txt", "--k=3", "more"});
  ASSERT_EQ(o.positional().size(), 2u);
  EXPECT_EQ(o.positional()[0], "input.txt");
  EXPECT_EQ(o.positional()[1], "more");
}

}  // namespace
}  // namespace voteopt
