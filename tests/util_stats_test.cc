#include "util/stats.h"

#include <gtest/gtest.h>

namespace voteopt {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, KnownSample) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.5);
}

TEST(PearsonTest, PerfectCorrelation) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> z = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantVectorGivesZero) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> c = {5, 5, 5};
  EXPECT_EQ(PearsonCorrelation(x, c), 0.0);
}

TEST(OverlapTest, Jaccard) {
  EXPECT_DOUBLE_EQ(JaccardOverlap({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardOverlap({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardOverlap({1}, {2}), 0.0);
  // Duplicates ignored.
  EXPECT_DOUBLE_EQ(JaccardOverlap({1, 1, 2}, {2, 2, 1}), 1.0);
}

TEST(OverlapTest, FractionOfFirstSet) {
  EXPECT_DOUBLE_EQ(OverlapFraction({1, 2, 3, 4}, {3, 4, 5}), 0.5);
  EXPECT_DOUBLE_EQ(OverlapFraction({}, {1}), 1.0);
}

}  // namespace
}  // namespace voteopt
