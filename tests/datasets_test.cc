#include <gtest/gtest.h>

#include <cmath>

#include "datasets/case_study.h"
#include "datasets/synthetic.h"
#include "graph/builder.h"

namespace voteopt::datasets {
namespace {

TEST(DatasetTest, AllFiveDatasetsAreValid) {
  for (DatasetName name : AllDatasets()) {
    const Dataset ds = MakeDataset(name, /*scale=*/0.05, /*seed=*/1);
    EXPECT_GT(ds.influence.num_nodes(), 0u) << ds.name;
    EXPECT_GT(ds.influence.num_edges(), 0u) << ds.name;
    EXPECT_TRUE(ds.influence.IsColumnStochastic(1e-6)) << ds.name;
    EXPECT_TRUE(ds.state.Validate(ds.influence.num_nodes()).ok()) << ds.name;
    EXPECT_LT(ds.default_target, ds.state.num_candidates()) << ds.name;
    // Counts graph shares the topology.
    EXPECT_EQ(ds.counts.num_nodes(), ds.influence.num_nodes()) << ds.name;
    EXPECT_EQ(ds.counts.num_edges(), ds.influence.num_edges()) << ds.name;
  }
}

TEST(DatasetTest, CandidateCountsMatchTableIII) {
  EXPECT_EQ(MakeDataset(DatasetName::kDblp, 0.05, 1).state.num_candidates(),
            2u);
  EXPECT_EQ(MakeDataset(DatasetName::kYelp, 0.05, 1).state.num_candidates(),
            10u);
  EXPECT_EQ(
      MakeDataset(DatasetName::kTwitterElection, 0.05, 1).state.num_candidates(),
      4u);
  EXPECT_EQ(MakeDataset(DatasetName::kTwitterDistancing, 0.05, 1)
                .state.num_candidates(),
            2u);
  EXPECT_EQ(
      MakeDataset(DatasetName::kTwitterMask, 0.05, 1).state.num_candidates(),
      2u);
}

TEST(DatasetTest, DeterministicInSeed) {
  const Dataset a = MakeDataset(DatasetName::kYelp, 0.05, 42);
  const Dataset b = MakeDataset(DatasetName::kYelp, 0.05, 42);
  EXPECT_EQ(a.influence.num_edges(), b.influence.num_edges());
  EXPECT_EQ(a.state.campaigns[0].initial_opinions,
            b.state.campaigns[0].initial_opinions);
  const Dataset c = MakeDataset(DatasetName::kYelp, 0.05, 43);
  EXPECT_NE(a.state.campaigns[0].initial_opinions,
            c.state.campaigns[0].initial_opinions);
}

TEST(DatasetTest, ScaleControlsSize) {
  const Dataset small = MakeDataset(DatasetName::kTwitterMask, 0.05, 7);
  const Dataset large = MakeDataset(DatasetName::kTwitterMask, 0.1, 7);
  EXPECT_GT(large.influence.num_nodes(), small.influence.num_nodes());
  EXPECT_EQ(small.influence.num_nodes(), DefaultNumNodes(DatasetName::kTwitterMask) / 20);
}

TEST(ReweightTest, WeightsFollowExponentialFormula) {
  graph::GraphBuilder b(2);
  b.AddEdge(0, 1, 5.0);  // interaction count a = 5
  auto counts = b.Build();
  ASSERT_TRUE(counts.ok());
  // Single in-edge: after normalization the weight is 1 regardless of mu —
  // so check the two-edge case for the actual formula.
  graph::GraphBuilder b2(3);
  b2.AddEdge(0, 2, 5.0);
  b2.AddEdge(1, 2, 20.0);
  auto counts2 = b2.Build();
  ASSERT_TRUE(counts2.ok());
  const double mu = 10.0;
  const graph::Graph g = ReweightWithMu(*counts2, mu);
  const double w1 = 1.0 - std::exp(-5.0 / mu);
  const double w2 = 1.0 - std::exp(-20.0 / mu);
  EXPECT_NEAR(g.InWeights(2)[0], w1 / (w1 + w2), 1e-12);
  EXPECT_NEAR(g.InWeights(2)[1], w2 / (w1 + w2), 1e-12);
  EXPECT_TRUE(g.IsColumnStochastic());
}

TEST(ReweightTest, LargerMuFlattensWeights) {
  // As mu -> infinity, 1 - e^{-a/mu} ~ a/mu: ratios approach raw-count
  // ratios; as mu -> 0 all weights saturate at 1 (ratios approach parity).
  graph::GraphBuilder b(3);
  b.AddEdge(0, 2, 1.0);
  b.AddEdge(1, 2, 10.0);
  auto counts = b.Build();
  ASSERT_TRUE(counts.ok());
  const graph::Graph small_mu = ReweightWithMu(*counts, 0.1);
  const graph::Graph large_mu = ReweightWithMu(*counts, 100.0);
  // Ratio of the stronger edge to the weaker one.
  const double ratio_small = small_mu.InWeights(2)[1] / small_mu.InWeights(2)[0];
  const double ratio_large = large_mu.InWeights(2)[1] / large_mu.InWeights(2)[0];
  EXPECT_NEAR(ratio_small, 1.0, 0.01);    // saturated
  EXPECT_NEAR(ratio_large, 10.0, 0.5);    // close to raw ratio
}

TEST(CaseStudyTest, StructureIsSound) {
  CaseStudyConfig config;
  config.num_users = 500;
  const CaseStudyData data = MakeCaseStudy(config);
  EXPECT_EQ(data.dataset.state.num_candidates(), 2u);
  EXPECT_EQ(data.dataset.default_target, 1u);
  EXPECT_TRUE(data.dataset.influence.IsColumnStochastic(1e-6));
  EXPECT_TRUE(
      data.dataset.state.Validate(data.dataset.influence.num_nodes()).ok());
  ASSERT_EQ(data.domains.size(), 500u);
  for (const auto& memberships : data.domains) {
    EXPECT_GE(memberships.size(), 1u);
    EXPECT_LE(memberships.size(), 3u);
    for (uint8_t d : memberships) EXPECT_LT(d, kNumDomains);
  }
  for (const auto& profile : data.candidate_profiles) {
    double sum = 0.0;
    for (double w : profile) sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(CaseStudyTest, SeedsIncreaseTargetVotes) {
  CaseStudyConfig config;
  config.num_users = 800;
  const CaseStudyData data = MakeCaseStudy(config);
  // Seed the 20 users with the largest out-influence.
  std::vector<std::pair<double, graph::NodeId>> by_degree;
  for (graph::NodeId v = 0; v < 800; ++v) {
    by_degree.push_back({data.dataset.influence.OutWeightSum(v), v});
  }
  std::sort(by_degree.rbegin(), by_degree.rend());
  std::vector<graph::NodeId> seeds;
  for (int i = 0; i < 20; ++i) seeds.push_back(by_degree[i].second);

  const auto report = AnalyzeCaseStudy(data, seeds, 20);
  ASSERT_EQ(report.size(), kNumDomains);
  uint32_t total = 0, before = 0, after = 0, seeds_assigned = 0;
  for (const auto& row : report) {
    EXPECT_LE(row.voting_for_target_before, row.total_users);
    EXPECT_LE(row.voting_for_target_after, row.total_users);
    EXPECT_GE(row.voting_for_target_after, row.voting_for_target_before);
    total += row.total_users;
    before += row.voting_for_target_before;
    after += row.voting_for_target_after;
    seeds_assigned += row.seeds_in_domain.size();
  }
  EXPECT_GE(total, 800u);  // users counted once per domain membership
  EXPECT_GT(after, before);
  EXPECT_EQ(seeds_assigned, 20u);  // every seed attributed to its domain
}

TEST(CaseStudyTest, DeterministicInSeed) {
  CaseStudyConfig config;
  config.num_users = 300;
  const CaseStudyData a = MakeCaseStudy(config);
  const CaseStudyData b = MakeCaseStudy(config);
  EXPECT_EQ(a.dataset.state.campaigns[0].initial_opinions,
            b.dataset.state.campaigns[0].initial_opinions);
  EXPECT_EQ(a.domains, b.domains);
}

}  // namespace
}  // namespace voteopt::datasets
