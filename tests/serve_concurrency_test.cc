// Concurrency coverage for the multi-dataset serving layer: answers must be
// bit-identical across worker-thread counts and across concurrent client
// threads (the frozen-view vs. per-query-state contract of
// docs/ARCHITECTURE.md), and the registry must load/evict datasets while
// the service keeps answering.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.h"

namespace voteopt::serve {
namespace {

/// Response JSON with the server-side timing stripped — everything that
/// must be invariant across thread counts and interleavings.
std::string StableJson(const Response& response) {
  return response.ToStableJson();
}

class ServeConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_a_ = ::testing::TempDir() + "/serve_conc_a";
    prefix_b_ = ::testing::TempDir() + "/serve_conc_b";
    ASSERT_TRUE(datasets::SaveDatasetBundle(
                    datasets::MakeDataset(datasets::DatasetName::kTwitterMask,
                                          0.05, /*seed=*/7),
                    prefix_a_)
                    .ok());
    ASSERT_TRUE(datasets::SaveDatasetBundle(
                    datasets::MakeDataset(datasets::DatasetName::kTwitterMask,
                                          0.05, /*seed=*/11),
                    prefix_b_)
                    .ok());
  }
  void TearDown() override {
    for (const std::string& prefix : {prefix_a_, prefix_b_}) {
      for (const char* suffix : {".influence.edges", ".counts.edges",
                                 ".campaigns.tsv", ".meta", ".sketch"}) {
        std::remove((prefix + suffix).c_str());
      }
    }
  }

  ServiceOptions OptionsFor(const std::string& prefix,
                            uint32_t worker_threads) const {
    ServiceOptions options;
    options.load.bundle_prefix = prefix;
    options.load.build_theta = 10000;
    options.load.build_horizon = 8;
    options.load.save_built_sketch = true;
    options.load.build_threads = 2;
    options.num_worker_threads = worker_threads;
    return options;
  }

  /// A mixed batch covering every query verb, several voting rules, and
  /// one deliberately invalid request (errors must be invariant too).
  static std::vector<Request> MixedBatch() {
    std::vector<Request> batch;
    auto add = [&batch](Request::Op op) -> Request& {
      Request request;
      request.op = op;
      request.id = "q" + std::to_string(batch.size());
      batch.push_back(request);
      return batch.back();
    };
    add(Request::Op::kTopK).k = 5;
    {
      Request& r = add(Request::Op::kTopK);
      r.k = 4;
      r.rule = "plurality";
    }
    {
      Request& r = add(Request::Op::kTopK);
      r.k = 3;
      r.rule = "copeland";
    }
    add(Request::Op::kMinSeed).k_max = 24;
    add(Request::Op::kEvaluate).seeds = {1, 2, 3};
    {
      Request& r = add(Request::Op::kEvaluate);
      r.seeds = {4, 5};
      r.overrides = {{0, 1.0}, {1, 0.25}};
      r.rule = "borda";
    }
    {
      Request& r = add(Request::Op::kTopK);
      r.k = 0;  // invalid on purpose
    }
    return batch;
  }

  std::string prefix_a_;
  std::string prefix_b_;
};

TEST_F(ServeConcurrencyTest, AnswersAreInvariantAcrossWorkerThreadCounts) {
  auto serial = CampaignService::Open(OptionsFor(prefix_a_, 1));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto parallel = CampaignService::Open(OptionsFor(prefix_a_, 4));
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  const std::vector<Request> batch = MixedBatch();
  const std::vector<Response> serial_answers = (*serial)->HandleBatch(batch);
  const std::vector<Response> parallel_answers =
      (*parallel)->HandleBatch(batch);
  ASSERT_EQ(serial_answers.size(), parallel_answers.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(StableJson(serial_answers[i]), StableJson(parallel_answers[i]))
        << "request " << i << " diverged across thread counts";
  }
  // The parallel service really did fan out.
  EXPECT_EQ((*parallel)->num_worker_threads(), 4u);
  EXPECT_GE((*parallel)->stats().worker_states, 1u);
}

TEST_F(ServeConcurrencyTest, ConcurrentClientsMatchSerialExecution) {
  auto service = CampaignService::Open(OptionsFor(prefix_a_, 4));
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  // Reference answers from strictly serial execution on a fresh service.
  auto reference = CampaignService::Open(OptionsFor(prefix_a_, 1));
  ASSERT_TRUE(reference.ok());
  const std::vector<Request> batch = MixedBatch();
  std::vector<std::string> expected;
  for (const Request& request : batch) {
    expected.push_back(StableJson((*reference)->Handle(request)));
  }

  // Several client threads fire the same mixed batch concurrently, each
  // starting at a different offset so different verbs collide in time.
  constexpr size_t kClients = 4;
  constexpr size_t kRounds = 3;
  std::vector<std::vector<std::string>> got(kClients);
  {
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (size_t round = 0; round < kRounds; ++round) {
          for (size_t i = 0; i < batch.size(); ++i) {
            const size_t at = (i + c) % batch.size();
            got[c].push_back(
                std::to_string(at) + "|" +
                StableJson((*service)->Handle(batch[at])));
          }
        }
      });
    }
    for (std::thread& client : clients) client.join();
  }
  for (size_t c = 0; c < kClients; ++c) {
    for (const std::string& tagged : got[c]) {
      const size_t bar = tagged.find('|');
      const size_t at = std::stoul(tagged.substr(0, bar));
      EXPECT_EQ(tagged.substr(bar + 1), expected[at])
          << "client " << c << " request " << at
          << " diverged under concurrency";
    }
  }
  const auto stats = (*service)->stats();
  EXPECT_EQ(stats.queries, kClients * kRounds * batch.size());
  // One state per concurrently executing query at most — far fewer than
  // one per query.
  EXPECT_LE(stats.worker_states, kClients);
}

TEST_F(ServeConcurrencyTest, StatsCountersAreExactUnderConcurrentStress) {
  auto service = CampaignService::Open(OptionsFor(prefix_a_, 4));
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  // Four client threads each fire the mixed batch (which includes one
  // deliberately invalid request) several times, concurrently.
  const std::vector<Request> batch = MixedBatch();
  constexpr size_t kClients = 4;
  constexpr size_t kRounds = 2;
  {
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&] {
        for (size_t round = 0; round < kRounds; ++round) {
          (*service)->HandleBatch(batch);
        }
      });
    }
    for (std::thread& client : clients) client.join();
  }
  const size_t issued = kClients * kRounds * batch.size();
  const size_t bad = kClients * kRounds;  // one invalid request per batch

  // The stats verb is an admin barrier, so after the joins its counters
  // are EXACT, not approximate: relaxed atomics still sum correctly.
  Request stats_request;
  stats_request.op = Request::Op::kStats;
  stats_request.v = 3;
  const Response stats = (*service)->Handle(stats_request);
  ASSERT_TRUE(stats.ok) << stats.error;
  double queries_total = 0, errors_total = 0, batches = 0;
  for (const auto& [name, value] : stats.stats) {
    if (name.rfind("voteopt_queries_total", 0) == 0) queries_total += value;
    if (name.rfind("voteopt_errors_total", 0) == 0) errors_total += value;
    if (name.rfind("voteopt_batch_requests_count", 0) == 0) batches += value;
  }
  EXPECT_EQ(queries_total, static_cast<double>(issued));
  EXPECT_EQ(errors_total, static_cast<double>(bad));
  EXPECT_EQ(batches, static_cast<double>(kClients * kRounds));
  EXPECT_EQ(stats.stats.at("voteopt_batch_inflight"), 0.0);
  // engine_queries_total includes the stats request itself (counted on
  // entry); the voteopt_queries_total family does not (its increment runs
  // after dispatch, i.e. after the snapshot was taken).
  EXPECT_EQ(stats.stats.at("engine_queries_total"),
            static_cast<double>(issued + 1));
  EXPECT_EQ(stats.stats.at("engine_errors_total"), static_cast<double>(bad));

  // The metric counters and the engine's core atomics agree exactly.
  const auto engine_stats = (*service)->stats();
  EXPECT_EQ(stats.stats.at("voteopt_evaluator_cache_hits_total"),
            static_cast<double>(engine_stats.evaluator_cache_hits));
  EXPECT_EQ(stats.stats.at("voteopt_evaluator_cache_misses_total"),
            static_cast<double>(engine_stats.evaluator_cache_misses));
  EXPECT_EQ(stats.stats.at("voteopt_sketch_resets_total"),
            static_cast<double>(engine_stats.sketch_resets));
  EXPECT_EQ(stats.stats.at("voteopt_worker_states_total"),
            static_cast<double>(engine_stats.worker_states));
}

TEST_F(ServeConcurrencyTest, AdminVerbsAreBatchOrderingBarriers) {
  auto service = CampaignService::Open(OptionsFor(prefix_a_, 4));
  ASSERT_TRUE(service.ok());

  std::vector<Request> batch;
  Request request;
  request.op = Request::Op::kList;
  batch.push_back(request);
  request = {};
  request.op = Request::Op::kLoad;
  request.dataset = "other";
  request.bundle = prefix_b_;
  batch.push_back(request);
  request = {};
  request.op = Request::Op::kTopK;
  request.k = 3;
  request.dataset = "other";  // must see the load that precedes it
  batch.push_back(request);
  request = {};
  request.op = Request::Op::kUnload;
  request.dataset = "other";
  batch.push_back(request);
  request = {};
  request.op = Request::Op::kTopK;
  request.k = 3;
  request.dataset = "other";  // must see the unload that precedes it
  batch.push_back(request);

  const std::vector<Response> responses = (*service)->HandleBatch(batch);
  ASSERT_EQ(responses.size(), 5u);
  EXPECT_TRUE(responses[0].ok);
  ASSERT_EQ(responses[0].datasets.size(), 1u);  // only the bootstrap dataset
  EXPECT_TRUE(responses[1].ok) << responses[1].error;
  ASSERT_EQ(responses[1].datasets.size(), 1u);
  EXPECT_EQ(responses[1].datasets[0].name, "other");
  EXPECT_TRUE(responses[2].ok) << responses[2].error;
  EXPECT_EQ(responses[2].dataset, "other");
  EXPECT_EQ(responses[2].seeds.size(), 3u);
  EXPECT_TRUE(responses[3].ok) << responses[3].error;
  EXPECT_FALSE(responses[4].ok);  // 'other' is gone again
  EXPECT_EQ((*service)->registry().size(), 1u);
}

TEST_F(ServeConcurrencyTest, UnloadEvictsIdleWorkerStates) {
  auto service = CampaignService::Open(OptionsFor(prefix_a_, 2));
  ASSERT_TRUE(service.ok());

  Request load;
  load.op = Request::Op::kLoad;
  load.dataset = "other";
  load.bundle = prefix_b_;
  ASSERT_TRUE((*service)->Handle(load).ok);

  // Route queries to both datasets so each accumulates pooled state.
  Request query;
  query.op = Request::Op::kEvaluate;
  query.seeds = {1, 2};
  query.dataset = "default";
  ASSERT_TRUE((*service)->Handle(query).ok);
  query.dataset = "other";
  ASSERT_TRUE((*service)->Handle(query).ok);
  EXPECT_GE((*service)->state_pool().IdleStates("other"), 1u);

  Request unload;
  unload.op = Request::Op::kUnload;
  unload.dataset = "other";
  ASSERT_TRUE((*service)->Handle(unload).ok);
  // Eviction while idle: the pooled states died with the dataset.
  EXPECT_EQ((*service)->state_pool().IdleStates("other"), 0u);
  EXPECT_EQ((*service)->registry().size(), 1u);

  // Queries against the evicted name fail cleanly; the survivor still
  // answers; unloading twice reports NotFound.
  query.dataset = "other";
  EXPECT_FALSE((*service)->Handle(query).ok);
  query.dataset = "default";
  EXPECT_TRUE((*service)->Handle(query).ok);
  EXPECT_FALSE((*service)->Handle(unload).ok);

  // A re-load under the same name serves again from a fresh generation.
  ASSERT_TRUE((*service)->Handle(load).ok);
  query.dataset = "other";
  EXPECT_TRUE((*service)->Handle(query).ok);
}

TEST_F(ServeConcurrencyTest, SingleWorkerReusesOneState) {
  auto service = CampaignService::Open(OptionsFor(prefix_a_, 1));
  ASSERT_TRUE(service.ok());
  std::vector<Request> batch;
  for (int i = 0; i < 6; ++i) {
    Request request;
    request.op = Request::Op::kEvaluate;
    request.seeds = {static_cast<graph::NodeId>(i)};
    batch.push_back(request);
  }
  for (const Response& response : (*service)->HandleBatch(batch)) {
    EXPECT_TRUE(response.ok) << response.error;
  }
  // Sequential execution on one worker: every query checked out the same
  // pooled state.
  EXPECT_EQ((*service)->stats().worker_states, 1u);
  EXPECT_EQ((*service)->state_pool().IdleStates("default"), 1u);
}

// Lock-free accessor audit regression: the pool's observability accessors
// (IdleStates, states_created) are read by monitoring threads while
// workers check states in and out. An observer hammers both for the whole
// query storm and asserts states_created is monotone — which only holds
// if the accessors take the pool mutex. The CI `tsan` job runs this suite,
// so an accessor that drops the lock fails there too.
TEST_F(ServeConcurrencyTest, StatePoolAccessorsAreSafeUnderQueryStorm) {
  auto service = CampaignService::Open(OptionsFor(prefix_a_, 4));
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const std::vector<Request> batch = MixedBatch();

  std::atomic<bool> done{false};
  std::thread observer([&] {
    uint64_t floor = 0;
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t created = (*service)->state_pool().states_created();
      EXPECT_GE(created, floor) << "states_created went backwards";
      floor = created;
      (void)(*service)->state_pool().IdleStates("default");
    }
  });

  constexpr size_t kClients = 3;
  constexpr size_t kRounds = 2;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < batch.size(); ++i) {
          (void)(*service)->Handle(batch[(i + c) % batch.size()]);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  done.store(true, std::memory_order_release);
  observer.join();

  const uint64_t created = (*service)->state_pool().states_created();
  EXPECT_GE(created, 1u);
  EXPECT_LE(created, kClients);  // one state per concurrent client at most
  EXPECT_GE((*service)->state_pool().IdleStates("default"), 1u);
}

}  // namespace
}  // namespace voteopt::serve
