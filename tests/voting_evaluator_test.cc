#include "voting/evaluator.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace voteopt::voting {
namespace {

using test::MakePaperExample;
using test::MakeRandomInstance;

TEST(EvaluatorTest, EvaluateSeedsMatchesTableI) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  ScoreEvaluator cumulative(model, ex.state, 0, 1, ScoreSpec::Cumulative());
  EXPECT_NEAR(cumulative.EvaluateSeeds({}), 2.55, 1e-9);
  EXPECT_NEAR(cumulative.EvaluateSeeds({0}), 3.30, 1e-9);
  EXPECT_NEAR(cumulative.EvaluateSeeds({0, 1}), 3.55, 1e-9);

  ScoreEvaluator plurality(model, ex.state, 0, 1, ScoreSpec::Plurality());
  EXPECT_DOUBLE_EQ(plurality.EvaluateSeeds({2}), 4.0);
  EXPECT_DOUBLE_EQ(plurality.EvaluateSeeds({3}), 3.0);

  ScoreEvaluator copeland(model, ex.state, 0, 1, ScoreSpec::Copeland());
  EXPECT_DOUBLE_EQ(copeland.EvaluateSeeds({}), 0.0);
  EXPECT_DOUBLE_EQ(copeland.EvaluateSeeds({2}), 1.0);
}

TEST(EvaluatorTest, ScoreFromTargetOpinionsAgreesWithFreeFunction) {
  auto inst = MakeRandomInstance(40, 200, 4, 23);
  opinion::FJModel model(inst.graph);
  for (ScoreSpec spec : {ScoreSpec::Cumulative(), ScoreSpec::Plurality(),
                         ScoreSpec::PApproval(2), ScoreSpec::Copeland(),
                         ScoreSpec::PositionalPApproval({1.0, 0.5, 0.25})}) {
    ScoreEvaluator ev(model, inst.state, 1, 5, spec);
    const auto target_row = ev.TargetHorizonOpinions({3, 9});

    OpinionMatrix matrix(inst.state.num_candidates());
    for (opinion::CandidateId q = 0; q < matrix.size(); ++q) {
      matrix[q] = q == 1 ? target_row
                         : model.Propagate(inst.state.campaigns[q], 5);
    }
    EXPECT_NEAR(ev.ScoreFromTargetOpinions(target_row),
                Score(matrix, 1, spec), 1e-9)
        << ScoreKindName(spec.kind);
  }
}

TEST(EvaluatorTest, UserRankMatchesBruteForce) {
  auto inst = MakeRandomInstance(30, 150, 5, 29);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 2, 4, ScoreSpec::Plurality());

  OpinionMatrix matrix(inst.state.num_candidates());
  for (opinion::CandidateId q = 0; q < matrix.size(); ++q) {
    matrix[q] = model.Propagate(inst.state.campaigns[q], 4);
  }
  for (uint32_t v = 0; v < 30; ++v) {
    EXPECT_EQ(ev.UserRank(v, matrix[2][v]), Rank(matrix, 2, v)) << "v=" << v;
    // Rank at value 1.1 would be 1 (nothing above it).
    EXPECT_EQ(ev.UserRank(v, 1.1), 1u);
    // Rank at value below everything is r.
    EXPECT_EQ(ev.UserRank(v, -0.1), 5u);
  }
}

TEST(EvaluatorTest, UserGammaIsMinCompetitorDistance) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  ScoreEvaluator ev(model, ex.state, 0, 1, ScoreSpec::Plurality());
  // Competitor horizon values: (0.35, 0.75, 0.78, 0.90).
  EXPECT_NEAR(ev.UserGamma(0, 0.40), 0.05, 1e-12);
  EXPECT_NEAR(ev.UserGamma(2, 0.60), 0.18, 1e-12);
  EXPECT_NEAR(ev.UserGamma(3, 1.00), 0.10, 1e-12);
}

TEST(EvaluatorTest, ScoresAllCandidatesReactsToTargetRow) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  ScoreEvaluator ev(model, ex.state, 0, 1, ScoreSpec::Plurality());

  const auto base = ev.ScoresAllCandidates(ev.TargetHorizonOpinions({}));
  EXPECT_DOUBLE_EQ(base[0], 2.0);
  EXPECT_DOUBLE_EQ(base[1], 2.0);

  // Seeding node 2 flips users 3 and 4 to the target: competitor drops.
  const auto seeded = ev.ScoresAllCandidates(ev.TargetHorizonOpinions({2}));
  EXPECT_DOUBLE_EQ(seeded[0], 4.0);
  EXPECT_DOUBLE_EQ(seeded[1], 0.0);
}

TEST(EvaluatorTest, HorizonOpinionsCachedForAllCandidates) {
  auto inst = MakeRandomInstance(25, 120, 3, 31);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 6, ScoreSpec::Cumulative());
  for (opinion::CandidateId q = 0; q < 3; ++q) {
    EXPECT_EQ(ev.HorizonOpinions(q), model.Propagate(inst.state.campaigns[q], 6));
  }
}

TEST(EvaluatorTest, AccessorsExposeProblemShape) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  ScoreEvaluator ev(model, ex.state, 0, 1, ScoreSpec::Copeland());
  EXPECT_EQ(ev.target(), 0u);
  EXPECT_EQ(ev.horizon(), 1u);
  EXPECT_EQ(ev.num_candidates(), 2u);
  EXPECT_EQ(ev.num_users(), 4u);
  EXPECT_EQ(ev.spec().kind, ScoreKind::kCopeland);
}

}  // namespace
}  // namespace voteopt::voting
