// End-to-end tests: dataset -> evaluator -> all nine selection methods ->
// winner determination / minimum winning budget, mirroring the bench flow.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/selector_factory.h"
#include "core/min_seed.h"
#include "core/sandwich.h"
#include "datasets/case_study.h"
#include "datasets/synthetic.h"
#include "opinion/fj_model.h"

namespace voteopt {
namespace {

using baselines::AllMethods;
using baselines::Method;
using baselines::MethodName;
using baselines::MethodOptions;
using baselines::SelectWithMethod;

MethodOptions FastOptions() {
  MethodOptions options;
  options.rw.lambda_override = 24;
  options.rs.theta_override = 2048;
  options.imm_epsilon = 0.3;
  return options;
}

class AllMethodsOnDatasetTest
    : public ::testing::TestWithParam<voting::ScoreKind> {};

TEST_P(AllMethodsOnDatasetTest, RunsEndToEnd) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetName::kTwitterMask, 0.04, 5);
  opinion::FJModel model(ds.influence);
  voting::ScoreSpec spec;
  spec.kind = GetParam();
  core::ScoreEvaluator ev(model, ds.state, ds.default_target, 8, spec);

  const double empty_score = ev.EvaluateSeeds({});
  const MethodOptions options = FastOptions();
  double our_best = 0.0, heuristic_best = 0.0;
  for (Method m : AllMethods()) {
    const auto result = SelectWithMethod(m, ev, 10, options);
    EXPECT_EQ(result.seeds.size(), 10u) << MethodName(m);
    EXPECT_GE(result.score, empty_score - 1e-9) << MethodName(m);
    if (m == Method::kDM || m == Method::kRW || m == Method::kRS) {
      our_best = std::max(our_best, result.score);
    } else {
      heuristic_best = std::max(heuristic_best, result.score);
    }
  }
  // The paper's headline: the proposed methods beat every baseline. On a
  // small instance we assert the weaker, robust property that the best of
  // DM/RW/RS is at least as good as the best baseline.
  EXPECT_GE(our_best, heuristic_best - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Scores, AllMethodsOnDatasetTest,
                         ::testing::Values(voting::ScoreKind::kCumulative,
                                           voting::ScoreKind::kPlurality,
                                           voting::ScoreKind::kCopeland));

TEST(IntegrationTest, SeedingChangesTheWinner) {
  // FJ-Vote-Win end to end on the case study: the target loses without
  // seeds and wins after Algorithm 2 finds a budget.
  datasets::CaseStudyConfig config;
  config.num_users = 600;
  const datasets::CaseStudyData data = datasets::MakeCaseStudy(config);
  opinion::FJModel model(data.dataset.influence);
  core::ScoreEvaluator ev(model, data.dataset.state,
                          data.dataset.default_target, 10,
                          voting::ScoreSpec::Plurality());

  const auto selector = baselines::MakeSelector(Method::kDM);
  const auto result = core::MinSeedsToWin(ev, selector, /*k_max=*/300);
  if (!core::TargetWins(ev, {})) {
    ASSERT_TRUE(result.achievable);
    EXPECT_GT(result.k_star, 0u);
    EXPECT_TRUE(core::TargetWins(ev, result.seeds));
  }
}

TEST(IntegrationTest, SandwichRatioReasonableOnDataset) {
  // Fig. 2's observation: the empirical factor F(S_U)/UB(S_U) is usually
  // well above 0.4 on real-ish instances.
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetName::kDblp, 0.05, 3);
  opinion::FJModel model(ds.influence);
  core::ScoreEvaluator ev(model, ds.state, ds.default_target, 6,
                          voting::ScoreSpec::Plurality());
  const auto result = core::SandwichSelect(ev, 10);
  const double ratio = result.diagnostics.at("sandwich_ratio");
  EXPECT_GT(ratio, 0.05);
  EXPECT_LE(ratio, 1.0 + 1e-9);
}

TEST(IntegrationTest, HigherHorizonSpreadsInfluence) {
  // Cumulative score of a fixed seed set grows with the horizon until the
  // diffusion saturates (Fig. 12's shape).
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetName::kYelp, 0.03, 11);
  opinion::FJModel model(ds.influence);
  std::vector<double> scores;
  for (uint32_t t : {0u, 2u, 5u, 10u, 20u}) {
    core::ScoreEvaluator ev(model, ds.state, ds.default_target, t,
                            voting::ScoreSpec::Cumulative());
    scores.push_back(ev.EvaluateSeeds({0, 1, 2, 3, 4}));
  }
  // Saturation: the change from t=10 to t=20 is smaller than from t=0
  // to t=2.
  const double early = std::fabs(scores[1] - scores[0]);
  const double late = std::fabs(scores[4] - scores[3]);
  EXPECT_LE(late, early + 1e-6);
}

TEST(IntegrationTest, ProblemValidationCatchesBadInputs) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetName::kTwitterMask, 0.02, 13);
  core::FJVoteProblem problem;
  problem.graph = &ds.influence;
  problem.state = &ds.state;
  problem.target = 0;
  problem.horizon = 5;
  problem.k = 10;
  problem.spec = voting::ScoreSpec::Plurality();
  EXPECT_TRUE(problem.Validate().ok());

  problem.k = 0;
  EXPECT_FALSE(problem.Validate().ok());
  problem.k = 10;
  problem.target = 99;
  EXPECT_FALSE(problem.Validate().ok());
  problem.target = 0;
  problem.spec = voting::ScoreSpec::PApproval(5);  // r = 2 < p
  EXPECT_FALSE(problem.Validate().ok());

  // Non-stochastic graph rejected.
  const core::FJVoteProblem bad{&ds.counts, &ds.state, 0, 5, 10,
                                voting::ScoreSpec::Plurality()};
  EXPECT_EQ(bad.Validate().code(), Status::Code::kFailedPrecondition);
}

}  // namespace
}  // namespace voteopt
