// Unit coverage for the observability substrate (obs/): instrument
// semantics, stable-pointer lookups, the two deterministic renderings
// (Prometheus text / flat snapshot), label canonicalization and escaping,
// trace span accumulation, and the slow-query log line.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace voteopt::obs {
namespace {

TEST(MetricsTest, CounterGaugeHistogramSemantics) {
  Registry registry;
  Counter* counter = registry.GetCounter("c_total");
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->Value(), 42u);

  Gauge* gauge = registry.GetGauge("g");
  gauge->Set(2.5);
  EXPECT_DOUBLE_EQ(gauge->Value(), 2.5);
  gauge->Add(-0.5);
  EXPECT_DOUBLE_EQ(gauge->Value(), 2.0);
  gauge->Set(7.0);  // last write wins
  EXPECT_DOUBLE_EQ(gauge->Value(), 7.0);

  Histogram* histogram =
      registry.GetHistogram("h_seconds", {}, "", {0.1, 1.0, 10.0});
  histogram->Observe(0.05);   // bucket 0 (<= 0.1)
  histogram->Observe(0.1);    // bucket 0 (bounds are inclusive)
  histogram->Observe(0.5);    // bucket 1
  histogram->Observe(100.0);  // +Inf bucket
  EXPECT_EQ(histogram->Count(), 4u);
  EXPECT_DOUBLE_EQ(histogram->Sum(), 100.65);
  EXPECT_EQ(histogram->BucketCount(0), 2u);
  EXPECT_EQ(histogram->BucketCount(1), 1u);
  EXPECT_EQ(histogram->BucketCount(2), 0u);
  EXPECT_EQ(histogram->BucketCount(3), 1u);  // +Inf
}

TEST(MetricsTest, LookupsReturnStablePointersAndCanonicalizeLabels) {
  Registry registry;
  Counter* a = registry.GetCounter("c", {{"op", "topk"}, {"rule", "borda"}});
  // Label order does not matter: both spellings name the same series.
  Counter* b = registry.GetCounter("c", {{"rule", "borda"}, {"op", "topk"}});
  EXPECT_EQ(a, b);
  // A different label set is a different series in the same family.
  Counter* c = registry.GetCounter("c", {{"op", "list"}});
  EXPECT_NE(a, c);
  a->Increment(3);
  c->Increment(1);
  const auto snapshot = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.at(R"(c{op="topk",rule="borda"})"), 3.0);
  EXPECT_DOUBLE_EQ(snapshot.at(R"(c{op="list"})"), 1.0);
}

TEST(MetricsTest, ConcurrentIncrementsAreExact) {
  Registry registry;
  Counter* counter = registry.GetCounter("stress_total");
  Histogram* histogram = registry.GetHistogram("stress_seconds");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        histogram->Observe(0.001);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(histogram->Count(), uint64_t{kThreads} * kPerThread);
}

TEST(MetricsTest, PrometheusTextRendering) {
  Registry registry;
  registry.GetCounter("app_requests_total", {{"op", "topk"}}, "Requests")
      ->Increment(5);
  registry.GetGauge("app_inflight", {}, "In-flight")->Set(2);
  Histogram* h = registry.GetHistogram("app_seconds", {{"op", "topk"}},
                                       "Latency", {0.5, 1.0});
  h->Observe(0.25);
  h->Observe(0.75);
  h->Observe(3.0);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# HELP app_requests_total Requests\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE app_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("app_requests_total{op=\"topk\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE app_inflight gauge\n"), std::string::npos);
  EXPECT_NE(text.find("app_inflight 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE app_seconds histogram\n"), std::string::npos);
  // Buckets are cumulative, carry `le` next to the series labels, and end
  // at +Inf; _sum and _count close the series.
  EXPECT_NE(text.find("app_seconds_bucket{op=\"topk\",le=\"0.5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("app_seconds_bucket{op=\"topk\",le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("app_seconds_bucket{op=\"topk\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("app_seconds_sum{op=\"topk\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("app_seconds_count{op=\"topk\"} 3\n"),
            std::string::npos);
  // Deterministic: a second render is byte-identical.
  EXPECT_EQ(registry.ToPrometheusText(), text);
}

TEST(MetricsTest, LabelValuesAreEscaped) {
  Registry registry;
  registry.GetCounter("esc_total", {{"path", "a\\b\"c\nd"}})->Increment();
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find(R"(esc_total{path="a\\b\"c\nd"} 1)"),
            std::string::npos)
      << text;
}

TEST(MetricsTest, SnapshotFlattensHistograms) {
  Registry registry;
  Histogram* h = registry.GetHistogram("s", {{"op", "x"}}, "", {1.0});
  h->Observe(0.5);
  h->Observe(2.0);
  const auto snapshot = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.at(R"(s_count{op="x"})"), 2.0);
  EXPECT_DOUBLE_EQ(snapshot.at(R"(s_sum{op="x"})"), 2.5);
  EXPECT_DOUBLE_EQ(snapshot.at(R"(s_bucket{op="x",le="1"})"), 1.0);
  EXPECT_DOUBLE_EQ(snapshot.at(R"(s_bucket{op="x",le="+Inf"})"), 2.0);
}

TEST(TraceTest, SpansAccumulateUnderTheStageSchema) {
  Trace trace(/*enabled=*/true);
  {
    Trace::Span span(&trace, "selection");
  }
  {
    // A second entry for the same stage accumulates, never overwrites.
    Trace::Span span(&trace, "selection");
    span.Stop();
    span.Stop();  // idempotent
  }
  trace.AddStageMillis("parse", 1.5);
  trace.AddWork("gain_evaluations", 100);
  trace.AddWork("gain_evaluations", 20);
  const auto& entries = trace.entries();
  ASSERT_TRUE(entries.count("stage.selection_ms"));
  EXPECT_GE(entries.at("stage.selection_ms"), 0.0);
  EXPECT_DOUBLE_EQ(entries.at("stage.parse_ms"), 1.5);
  EXPECT_DOUBLE_EQ(entries.at("work.gain_evaluations"), 120.0);
}

TEST(TraceTest, DisabledTraceRecordsNothing) {
  Trace trace;  // disabled by default
  EXPECT_FALSE(trace.enabled());
  Trace::Span span(&trace, "selection");
  span.Stop();
  trace.AddStageMillis("parse", 1.0);
  trace.AddWork("w", 1);
  EXPECT_TRUE(trace.entries().empty());
}

TEST(TraceTest, SlowQueryLogLineFormat) {
  Trace trace(/*enabled=*/true);
  trace.AddStageMillis("selection", 12.5);
  trace.AddWork("gain_evaluations", 64);

  ::testing::internal::CaptureStderr();
  MaybeLogSlowQuery("topk", "yelp", "q7", /*total_millis=*/18.25,
                    /*threshold_millis=*/5.0, trace);
  const std::string line = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(line.find("\"slow_query\": true"), std::string::npos) << line;
  EXPECT_NE(line.find("\"op\": \"topk\""), std::string::npos);
  EXPECT_NE(line.find("\"dataset\": \"yelp\""), std::string::npos);
  EXPECT_NE(line.find("\"id\": \"q7\""), std::string::npos);
  EXPECT_NE(line.find("\"millis\": 18.25"), std::string::npos);
  EXPECT_NE(line.find("\"stage.selection_ms\": 12.5"), std::string::npos);
  EXPECT_NE(line.find("\"work.gain_evaluations\": 64"), std::string::npos);
  EXPECT_EQ(line.back(), '\n');

  // Below threshold or disarmed (< 0): silence.
  ::testing::internal::CaptureStderr();
  MaybeLogSlowQuery("topk", "yelp", "q7", 2.0, 5.0, trace);
  MaybeLogSlowQuery("topk", "yelp", "q7", 1e9, -1.0, trace);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

}  // namespace
}  // namespace voteopt::obs
