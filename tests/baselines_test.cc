#include <gtest/gtest.h>

#include "baselines/cascade_models.h"
#include "baselines/degree.h"
#include "baselines/ged_t.h"
#include "baselines/imm.h"
#include "baselines/pagerank.h"
#include "baselines/rwr.h"
#include "baselines/selector_factory.h"
#include "core/greedy_dm.h"
#include "graph/builder.h"
#include "test_fixtures.h"

namespace voteopt::baselines {
namespace {

using test::MakePaperExample;
using test::MakeRandomInstance;

graph::Graph StarGraph(uint32_t leaves) {
  // Node 0 points to every leaf with weight 1.
  graph::GraphBuilder b(leaves + 1);
  for (graph::NodeId v = 1; v <= leaves; ++v) b.AddEdge(0, v, 1.0);
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

// ---------------------------------------------------------------------------
// IC / LT diffusion.
// ---------------------------------------------------------------------------

TEST(CascadeTest, SeedsAlwaysActive) {
  auto inst = MakeRandomInstance(30, 150, 2, 3);
  Rng rng(5);
  for (auto model : {CascadeModel::kIndependentCascade,
                     CascadeModel::kLinearThreshold}) {
    const uint64_t spread =
        SimulateSpreadOnce(inst.graph, {1, 2, 3}, model, &rng);
    EXPECT_GE(spread, 3u);
  }
}

TEST(CascadeTest, CertainEdgesActivateWholeChain) {
  // Chain with weight-1 edges: IC activates everything downstream.
  graph::GraphBuilder b(5);
  for (graph::NodeId v = 0; v + 1 < 5; ++v) b.AddEdge(v, v + 1, 1.0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  Rng rng(7);
  EXPECT_EQ(SimulateSpreadOnce(*g, {0}, CascadeModel::kIndependentCascade,
                               &rng),
            5u);
  // LT with incoming weight 1: threshold always crossed.
  EXPECT_EQ(SimulateSpreadOnce(*g, {0}, CascadeModel::kLinearThreshold, &rng),
            5u);
}

TEST(CascadeTest, SpreadMonotoneInSeeds) {
  auto inst = MakeRandomInstance(60, 300, 2, 9);
  Rng rng1(11), rng2(11);
  const double small = EstimateSpread(inst.graph, {0, 1},
                                      CascadeModel::kIndependentCascade, 300,
                                      &rng1);
  const double large = EstimateSpread(inst.graph, {0, 1, 2, 3, 4, 5},
                                      CascadeModel::kIndependentCascade, 300,
                                      &rng2);
  EXPECT_GE(large, small);
}

TEST(CascadeTest, StarSpreadMatchesExpectation) {
  // IC from the hub with p = 0.5 edges: E[spread] = 1 + leaves/2.
  graph::GraphBuilder b(11);
  for (graph::NodeId v = 1; v <= 10; ++v) b.AddEdge(0, v, 0.5);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  Rng rng(13);
  const double spread = EstimateSpread(
      *g, {0}, CascadeModel::kIndependentCascade, 20000, &rng);
  EXPECT_NEAR(spread, 6.0, 0.1);
}

TEST(RRSetTest, ContainsRootAndRespectsModel) {
  auto inst = MakeRandomInstance(40, 200, 2, 15);
  Rng rng(17);
  std::vector<graph::NodeId> rr;
  for (int i = 0; i < 200; ++i) {
    SampleRRSet(inst.graph, CascadeModel::kIndependentCascade, &rng, &rr);
    ASSERT_FALSE(rr.empty());
    SampleRRSet(inst.graph, CascadeModel::kLinearThreshold, &rng, &rr);
    ASSERT_FALSE(rr.empty());
    // LT RR sets are simple paths: all nodes distinct.
    std::set<graph::NodeId> unique(rr.begin(), rr.end());
    EXPECT_EQ(unique.size(), rr.size());
  }
}

// ---------------------------------------------------------------------------
// IMM.
// ---------------------------------------------------------------------------

TEST(MaxCoverageTest, PicksCoveringNode) {
  // Node 7 covers all three sets; greedy must pick it first.
  std::vector<std::vector<graph::NodeId>> rr_sets = {
      {1, 7}, {2, 7}, {3, 7}};
  std::vector<graph::NodeId> seeds;
  const double frac = MaxCoverage(rr_sets, 10, 1, &seeds);
  EXPECT_EQ(seeds, std::vector<graph::NodeId>{7});
  EXPECT_DOUBLE_EQ(frac, 1.0);
}

TEST(MaxCoverageTest, TwoSeedsCoverDisjointSets) {
  std::vector<std::vector<graph::NodeId>> rr_sets = {{0}, {0}, {1}, {2}};
  std::vector<graph::NodeId> seeds;
  const double frac = MaxCoverage(rr_sets, 3, 2, &seeds);
  EXPECT_EQ(seeds.size(), 2u);
  EXPECT_EQ(seeds[0], 0u);           // covers two sets
  EXPECT_DOUBLE_EQ(frac, 0.75);      // 3 of 4 sets covered
}

TEST(IMMTest, ReturnsKDistinctSeeds) {
  auto inst = MakeRandomInstance(50, 250, 2, 19);
  Rng rng(21);
  const IMMResult result = IMMSelect(
      inst.graph, 5, CascadeModel::kIndependentCascade, {.epsilon = 0.3},
      &rng);
  EXPECT_EQ(result.seeds.size(), 5u);
  std::set<graph::NodeId> unique(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(unique.size(), 5u);
  EXPECT_GT(result.rr_sets_used, 0u);
  EXPECT_GE(result.estimated_spread, 5.0);
}

TEST(IMMTest, EstimatedSpreadMatchesMonteCarlo) {
  auto inst = MakeRandomInstance(60, 350, 2, 23);
  Rng rng(25);
  const IMMResult result = IMMSelect(
      inst.graph, 4, CascadeModel::kIndependentCascade, {.epsilon = 0.2},
      &rng);
  Rng mc_rng(27);
  const double mc = EstimateSpread(inst.graph, result.seeds,
                                   CascadeModel::kIndependentCascade, 2000,
                                   &mc_rng);
  EXPECT_NEAR(result.estimated_spread, mc, 0.25 * mc + 1.0);
}

TEST(IMMTest, HubIsSelectedOnStar) {
  graph::Graph g = StarGraph(20);
  Rng rng(29);
  const IMMResult result =
      IMMSelect(g, 1, CascadeModel::kIndependentCascade, {.epsilon = 0.3},
                &rng);
  ASSERT_EQ(result.seeds.size(), 1u);
  EXPECT_EQ(result.seeds[0], 0u);
}

// ---------------------------------------------------------------------------
// PageRank / RWR / degree.
// ---------------------------------------------------------------------------

TEST(PageRankTest, ScoresSumToOne) {
  auto inst = MakeRandomInstance(50, 250, 2, 31);
  const auto scores = PageRankScores(inst.graph, {});
  double total = 0.0;
  for (double s : scores) total += s;
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(PageRankTest, TransposeRanksInfluencersHigh) {
  // On a star (hub -> leaves), ranking on the transpose makes the hub the
  // top node (its influence reaches everyone).
  graph::Graph g = StarGraph(10);
  const auto scores = PageRankScores(g, {.on_transpose = true});
  EXPECT_EQ(TopK(scores, 1)[0], 0u);
  // On the forward graph the hub collects no mass instead.
  const auto fwd = PageRankScores(g, {.on_transpose = false});
  EXPECT_NE(TopK(fwd, 1)[0], 0u);
}

TEST(TopKTest, OrderAndTieBreak) {
  const std::vector<double> scores = {0.1, 0.5, 0.5, 0.9};
  EXPECT_EQ(TopK(scores, 3), (std::vector<graph::NodeId>{3, 1, 2}));
  EXPECT_EQ(TopK(scores, 10).size(), 4u);  // clamped to n
}

TEST(RWRTest, UniformRestartScoresSumToOne) {
  auto inst = MakeRandomInstance(40, 200, 2, 37);
  const auto scores = RWRScores(inst.graph, {}, {});
  double total = 0.0;
  for (double s : scores) total += s;
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(RWRTest, RestartDistributionBiasesScores) {
  graph::Graph g = StarGraph(4);
  // All restart mass on node 3.
  std::vector<double> restart(5, 0.0);
  restart[3] = 1.0;
  const auto scores = RWRScores(g, restart, {.restart_prob = 0.5});
  // Node 3 holds at least the restart mass share.
  EXPECT_GT(scores[3], scores[1]);
  EXPECT_GT(scores[3], scores[2]);
}

TEST(DegreeTest, WeightedOutDegree) {
  graph::GraphBuilder b(3);
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(0, 2, 0.25);
  b.AddEdge(1, 2, 0.75);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  const auto wd = WeightedOutDegree(*g);
  EXPECT_DOUBLE_EQ(wd[0], 0.75);
  EXPECT_DOUBLE_EQ(wd[1], 0.75);
  EXPECT_DOUBLE_EQ(wd[2], 0.0);
  const auto d = OutDegree(*g);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
}

// ---------------------------------------------------------------------------
// GED-T.
// ---------------------------------------------------------------------------

TEST(GedTTest, MatchesDMOnCumulativeScore) {
  // Paper § VIII-C: "our DM and baseline GED-T perform the same for the
  // cumulative score (only)".
  auto inst = MakeRandomInstance(40, 200, 2, 41);
  opinion::FJModel model(inst.graph);
  core::ScoreEvaluator ev(model, inst.state, 0, 4,
                          voting::ScoreSpec::Cumulative());
  const auto dm = core::GreedyDMSelect(ev, 4);
  const auto ged = GedTSelect(ev, 4);
  EXPECT_EQ(ged.seeds, dm.seeds);
  EXPECT_NEAR(ged.score, dm.score, 1e-9);
}

TEST(GedTTest, OptimizesCumulativeEvenUnderPluralitySpec) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  core::ScoreEvaluator ev(model, ex.state, 0, 1,
                          voting::ScoreSpec::Plurality());
  const auto ged = GedTSelect(ev, 1);
  // GED-T picks node 0 (best cumulative seed, Table I), which is NOT the
  // best plurality seed (node 2) — exactly the paper's point.
  EXPECT_EQ(ged.seeds, std::vector<graph::NodeId>{0});
  EXPECT_DOUBLE_EQ(ged.score, 2.0);  // plurality score of {0}
}

// ---------------------------------------------------------------------------
// Factory.
// ---------------------------------------------------------------------------

TEST(FactoryTest, NamesRoundTrip) {
  for (Method m : AllMethods()) {
    const auto parsed = ParseMethod(MethodName(m));
    ASSERT_TRUE(parsed.ok()) << MethodName(m);
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(ParseMethod("bogus").ok());
  EXPECT_EQ(AllMethods().size(), 9u);
}

TEST(FactoryTest, ParseMethodIsCaseInsensitive) {
  for (const char* spelling : {"rs", "RS", "Rs"}) {
    const auto parsed = ParseMethod(spelling);
    ASSERT_TRUE(parsed.ok()) << spelling;
    EXPECT_EQ(*parsed, Method::kRS);
  }
  EXPECT_EQ(*ParseMethod("ged-t"), Method::kGedT);
  EXPECT_EQ(*ParseMethod("rwr"), Method::kRWR);
  EXPECT_EQ(*ParseMethod("dc"), Method::kDegree);
  // Unknown names enumerate the valid roster in the error message.
  const auto unknown = ParseMethod("frobnicate");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), Status::Code::kInvalidArgument);
  for (Method m : AllMethods()) {
    EXPECT_NE(unknown.status().message().find(MethodName(m)),
              std::string::npos);
  }
}

TEST(FactoryTest, EveryMethodReturnsKSeeds) {
  auto inst = MakeRandomInstance(30, 160, 2, 43, /*max_stubbornness=*/0.8);
  opinion::FJModel model(inst.graph);
  core::ScoreEvaluator ev(model, inst.state, 0, 3,
                          voting::ScoreSpec::Cumulative());
  MethodOptions options;
  options.rw.lambda_override = 16;
  options.rs.theta_override = 512;
  options.imm_epsilon = 0.3;
  for (Method m : AllMethods()) {
    const auto result = SelectWithMethod(m, ev, 3, options);
    EXPECT_EQ(result.seeds.size(), 3u) << MethodName(m);
    std::set<graph::NodeId> unique(result.seeds.begin(), result.seeds.end());
    EXPECT_EQ(unique.size(), 3u) << MethodName(m);
    EXPECT_GE(result.score, 0.0) << MethodName(m);
  }
}

TEST(FactoryTest, MakeSelectorWrapsMethod) {
  auto inst = MakeRandomInstance(25, 130, 2, 47);
  opinion::FJModel model(inst.graph);
  core::ScoreEvaluator ev(model, inst.state, 0, 3,
                          voting::ScoreSpec::Cumulative());
  const auto selector = MakeSelector(Method::kDegree);
  const auto direct = SelectWithMethod(Method::kDegree, ev, 2);
  const auto wrapped = selector(ev, 2);
  EXPECT_EQ(wrapped.seeds, direct.seeds);
}

}  // namespace
}  // namespace voteopt::baselines
