#include "opinion/equilibrium.h"

#include <gtest/gtest.h>

#include "baselines/ged_t.h"
#include "core/greedy_dm.h"
#include "test_fixtures.h"
#include "util/stats.h"

namespace voteopt::opinion {
namespace {

using test::MakePaperExample;
using test::MakeRandomInstance;

TEST(EquilibriumTest, PaperExampleClosedForm) {
  // Users 1, 2 are fully stubborn; user 3's fixed point solves
  //   b3 = 0.5 * (0.5*0.4 + 0.5*0.8) + 0.5 * 0.6 = 0.6  (already there)
  // and user 4's solves b4 = 0.5*b3 + 0.5*0.9 -> 0.5*0.6 + 0.45 = 0.75.
  auto ex = MakePaperExample();
  FJModel model(ex.graph);
  const auto eq = EquilibriumOpinions(model, ex.state.campaigns[0]);
  ASSERT_TRUE(eq.converged);
  EXPECT_NEAR(eq.opinions[0], 0.40, 1e-9);
  EXPECT_NEAR(eq.opinions[1], 0.80, 1e-9);
  EXPECT_NEAR(eq.opinions[2], 0.60, 1e-9);
  EXPECT_NEAR(eq.opinions[3], 0.75, 1e-9);
}

TEST(EquilibriumTest, IsAFixedPointOfTheStep) {
  auto inst = MakeRandomInstance(40, 220, 2, 401, /*max_stubbornness=*/0.9);
  // Ensure some positive stubbornness everywhere so the iteration contracts.
  for (auto& d : inst.state.campaigns[0].stubbornness) {
    d = std::max(d, 0.05);
  }
  FJModel model(inst.graph);
  const auto eq = EquilibriumOpinions(model, inst.state.campaigns[0]);
  ASSERT_TRUE(eq.converged);
  std::vector<double> next;
  model.Step(eq.opinions, inst.state.campaigns[0].initial_opinions,
             inst.state.campaigns[0].stubbornness, &next);
  for (size_t v = 0; v < next.size(); ++v) {
    EXPECT_NEAR(next[v], eq.opinions[v], 1e-8);
  }
}

TEST(EquilibriumTest, MatchesLongHorizonPropagation) {
  auto inst = MakeRandomInstance(30, 160, 2, 403, 0.9);
  for (auto& d : inst.state.campaigns[0].stubbornness) d = std::max(d, 0.1);
  FJModel model(inst.graph);
  const auto eq = EquilibriumOpinions(model, inst.state.campaigns[0]);
  const auto long_run = model.Propagate(inst.state.campaigns[0], 2000);
  ASSERT_TRUE(eq.converged);
  for (size_t v = 0; v < long_run.size(); ++v) {
    EXPECT_NEAR(eq.opinions[v], long_run[v], 1e-6);
  }
}

TEST(EquilibriumTest, PureDeGrootCycleDoesNotConverge) {
  // Two non-stubborn users swapping opinions forever: no unique fixed
  // point reachable by iteration (oblivious cycle, § II-A).
  graph::GraphBuilder b(2);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 0, 1.0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  Campaign campaign;
  campaign.initial_opinions = {0.0, 1.0};
  campaign.stubbornness = {0.0, 0.0};
  FJModel model(*g);
  const auto eq =
      EquilibriumOpinions(model, campaign, {.max_iterations = 500});
  EXPECT_FALSE(eq.converged);
  EXPECT_EQ(eq.iterations, 500u);
}

TEST(EquilibriumTest, SeedsRaiseTheEquilibrium) {
  auto inst = MakeRandomInstance(25, 140, 2, 405, 0.9);
  for (auto& d : inst.state.campaigns[0].stubbornness) d = std::max(d, 0.1);
  FJModel model(inst.graph);
  const auto base = EquilibriumOpinions(model, inst.state.campaigns[0]);
  const auto seeded =
      EquilibriumWithSeeds(model, inst.state.campaigns[0], {3, 7});
  ASSERT_TRUE(base.converged && seeded.converged);
  for (size_t v = 0; v < base.opinions.size(); ++v) {
    EXPECT_GE(seeded.opinions[v], base.opinions[v] - 1e-9);
  }
  EXPECT_NEAR(seeded.opinions[3], 1.0, 1e-9);
}

TEST(GedEquilibriumTest, SelectsSeedsAndReportsEquilibriumSum) {
  auto inst = MakeRandomInstance(25, 130, 2, 407, 0.9);
  for (auto& d : inst.state.campaigns[0].stubbornness) d = std::max(d, 0.1);
  FJModel model(inst.graph);
  core::ScoreEvaluator ev(model, inst.state, 0, 5,
                          voting::ScoreSpec::Cumulative());
  const auto result = baselines::GedEquilibriumSelect(ev, 3);
  EXPECT_EQ(result.seeds.size(), 3u);
  EXPECT_GT(result.diagnostics.at("equilibrium_sum"), 0.0);
  EXPECT_GE(result.score, ev.EvaluateSeeds({}));
}

TEST(GedEquilibriumTest, HorizonAndEquilibriumSeedsCanDiverge) {
  // The paper's App. B point: at small horizons the optimal seeds differ
  // from the equilibrium-optimal ones. We assert the machinery reports
  // both and their overlap is computable (not that they always differ —
  // on some instances they coincide).
  auto inst = MakeRandomInstance(30, 160, 2, 409, 0.9);
  for (auto& d : inst.state.campaigns[0].stubbornness) d = std::max(d, 0.1);
  FJModel model(inst.graph);
  core::ScoreEvaluator short_horizon(model, inst.state, 0, 2,
                                     voting::ScoreSpec::Cumulative());
  const auto horizon_seeds = core::GreedyDMSelect(short_horizon, 4).seeds;
  const auto equilibrium_seeds =
      baselines::GedEquilibriumSelect(short_horizon, 4).seeds;
  const double overlap = OverlapFraction(horizon_seeds, equilibrium_seeds);
  EXPECT_GE(overlap, 0.0);
  EXPECT_LE(overlap, 1.0);
}

}  // namespace
}  // namespace voteopt::opinion
