#include "bench_common.h"

#include <cstdlib>
#include <sstream>

#include "util/thread_pool.h"

namespace voteopt::bench {

datasets::DatasetName ParseDatasetOrDie(const std::string& name) {
  if (name == "dblp") return datasets::DatasetName::kDblp;
  if (name == "yelp") return datasets::DatasetName::kYelp;
  if (name == "tw-elec") return datasets::DatasetName::kTwitterElection;
  if (name == "tw-dist") return datasets::DatasetName::kTwitterDistancing;
  if (name == "tw-mask") return datasets::DatasetName::kTwitterMask;
  std::cerr << "unknown dataset '" << name
            << "' (expected dblp|yelp|tw-elec|tw-dist|tw-mask)\n";
  std::exit(2);
}

std::string DatasetShortName(datasets::DatasetName name) {
  switch (name) {
    case datasets::DatasetName::kDblp:
      return "dblp";
    case datasets::DatasetName::kYelp:
      return "yelp";
    case datasets::DatasetName::kTwitterElection:
      return "tw-elec";
    case datasets::DatasetName::kTwitterDistancing:
      return "tw-dist";
    case datasets::DatasetName::kTwitterMask:
      return "tw-mask";
  }
  return "?";
}

voting::ScoreSpec ParseScoreSpec(const Options& options,
                                 const std::string& default_score,
                                 uint32_t num_candidates) {
  const std::string name = options.GetString("score", default_score);
  if (name == "cumulative") return voting::ScoreSpec::Cumulative();
  if (name == "plurality") return voting::ScoreSpec::Plurality();
  if (name == "copeland") return voting::ScoreSpec::Copeland();
  const uint32_t p = static_cast<uint32_t>(
      std::min<int64_t>(options.GetInt("p", 2), num_candidates));
  if (name == "p-approval") return voting::ScoreSpec::PApproval(p);
  if (name == "positional") {
    const double omega_p = options.GetDouble("omega_p", 0.5);
    std::vector<double> omega(p, 1.0);
    omega.back() = omega_p;
    return voting::ScoreSpec::PositionalPApproval(std::move(omega));
  }
  std::cerr << "unknown score '" << name << "'\n";
  std::exit(2);
}

std::string HostMetadataJson() {
#if defined(__clang__)
  const std::string compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  const std::string compiler = std::string("gcc ") + __VERSION__;
#else
  const std::string compiler = "unknown";
#endif
#ifdef VOTEOPT_BUILD_TYPE
  const std::string build_type = VOTEOPT_BUILD_TYPE;
#else
  const std::string build_type = "unknown";
#endif
#if defined(__linux__)
  const std::string os = "linux";
#elif defined(__APPLE__)
  const std::string os = "darwin";
#elif defined(_WIN32)
  const std::string os = "windows";
#else
  const std::string os = "unknown";
#endif
  std::ostringstream out;
  out << "{\"hardware_threads\": " << ThreadPool::DefaultThreadCount()
      << ", \"build_type\": \"" << build_type << "\", \"compiler\": \""
      << compiler << "\", \"os\": \"" << os
      << "\", \"pointer_bits\": " << 8 * sizeof(void*) << "}";
  return out.str();
}

BenchEnv MakeEnv(const Options& options, const std::string& default_dataset,
                 double default_scale) {
  BenchEnv env;
  env.scale = options.GetDouble("scale", default_scale);
  env.seed = static_cast<uint64_t>(options.GetInt("seed", 1));
  env.mu = options.GetDouble("mu", 10.0);
  env.horizon = static_cast<uint32_t>(options.GetInt("t", 20));
  env.csv = options.GetBool("csv", false);
  const datasets::DatasetName name =
      ParseDatasetOrDie(options.GetString("dataset", default_dataset));
  env.dataset = datasets::MakeDataset(name, env.scale, env.seed, env.mu);
  env.model = std::make_unique<opinion::FJModel>(env.dataset.influence);
  return env;
}

void Emit(const BenchEnv& env, const std::string& title, const Table& table) {
  if (env.csv) {
    table.PrintCsv(std::cout);
    return;
  }
  std::cout << "\n== " << title << " ==\n"
            << "dataset=" << env.dataset.name << " n=" << env.num_nodes()
            << " m=" << env.graph().num_edges() << " r="
            << env.dataset.state.num_candidates() << " t=" << env.horizon
            << " seed=" << env.seed << "\n\n";
  table.Print(std::cout);
  std::cout << std::flush;
}

baselines::MethodOptions DefaultMethodOptions(const Options& options) {
  baselines::MethodOptions mo;
  mo.rng_seed = static_cast<uint64_t>(options.GetInt("method_seed", 42));
  mo.rw.rho = options.GetDouble("rho", 0.9);
  mo.rw.delta = options.GetDouble("delta", 0.1);
  mo.rw.lambda_cap =
      static_cast<uint64_t>(options.GetInt("lambda_cap", 256));
  mo.rw.rng_seed = mo.rng_seed;
  mo.rs.epsilon = options.GetDouble("epsilon", 0.1);
  mo.rs.theta_cap = static_cast<uint64_t>(options.GetInt("theta_cap", 1 << 20));
  mo.rs.theta_override =
      static_cast<uint64_t>(options.GetInt("theta", 0));
  mo.rs.rng_seed = mo.rng_seed;
  mo.rs.num_threads =
      static_cast<uint32_t>(options.GetInt("threads", 1));
  mo.imm_epsilon = options.GetDouble("imm_epsilon", 0.2);
  return mo;
}

std::vector<baselines::Method> ParseMethods(const Options& options) {
  if (!options.Has("methods")) return baselines::AllMethods();
  std::vector<baselines::Method> methods;
  std::string list = options.GetString("methods", "");
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const std::string token =
        list.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!token.empty()) {
      const auto method = baselines::ParseMethod(token);
      if (!method.ok()) {
        std::cerr << method.status().ToString() << "\n";
        std::exit(2);
      }
      methods.push_back(*method);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return methods;
}

}  // namespace voteopt::bench
