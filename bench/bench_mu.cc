// Paper Fig. 19 (appendix D): sensitivity of the scores to the edge-weight
// parameter mu in w = 1 - e^{-a/mu}. Left: cumulative on Twitter US
// Election; right: plurality on Yelp (we run both from one binary).
//
// Shape to reproduce: after column normalization the impact of mu is small;
// mu = 10 and mu = 15 nearly coincide (the paper's justification for the
// default mu = 10).
#include "bench_common.h"

#include "core/greedy_dm.h"
#include "core/sandwich.h"

using namespace voteopt;
using namespace voteopt::bench;

namespace {

void RunPanel(const Options& options, const char* dataset,
              const voting::ScoreSpec& spec, const char* title) {
  const double scale = options.GetDouble("scale", 0.12);
  const uint64_t seed = static_cast<uint64_t>(options.GetInt("seed", 1));
  const uint32_t horizon = static_cast<uint32_t>(options.GetInt("t", 10));
  const auto mu_values = options.GetDoubleList("mus", {1, 5, 10, 15, 25});
  const auto k_values = options.GetIntList("k", {10, 25});
  const bool csv = options.GetBool("csv", false);

  // One topology; weights re-derived per mu (the counts graph is kept).
  datasets::Dataset base = datasets::MakeDataset(
      bench::ParseDatasetOrDie(dataset), scale, seed, 10.0);

  Table table({"mu", "k", "score"});
  for (double mu : mu_values) {
    const graph::Graph influence =
        datasets::ReweightWithMu(base.counts, mu);
    opinion::FJModel model(influence);
    voting::ScoreEvaluator ev(model, base.state, base.default_target, horizon,
                              spec);
    for (int64_t k : k_values) {
      const auto result =
          spec.kind == voting::ScoreKind::kCumulative
              ? core::GreedyDMSelect(ev, static_cast<uint32_t>(k))
              : core::SandwichSelect(ev, static_cast<uint32_t>(k));
      table.Add(Table::Num(mu, 1), k, Table::Num(result.score, 2));
    }
  }
  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    std::cout << "\n== Fig. 19: " << title << " (dataset=" << dataset
              << ", t=" << horizon << ") ==\n\n";
    table.Print(std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options options(argc, argv);
  RunPanel(options, "tw-elec", voting::ScoreSpec::Cumulative(),
           "cumulative score vs mu");
  RunPanel(options, "yelp", voting::ScoreSpec::Plurality(),
           "plurality score vs mu");
  return 0;
}
