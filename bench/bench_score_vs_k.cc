// Paper Figs. 6, 7, 8 (a-d): score achieved and seed-selection time vs seed
// budget k for all nine methods. --score picks the figure (plurality ->
// Fig. 6, copeland -> Fig. 7, cumulative -> Fig. 8); --dataset picks the
// panel (the paper shows Yelp, Twitter US Election and Twitter Mask).
//
// Shapes to reproduce: DM/RW/RS dominate all baselines (except GED-T == DM
// on cumulative); scores grow with k, fastest for small k; DM is orders of
// magnitude slower than RW/RS while RS is the fastest of the three.
#include "bench_common.h"

using namespace voteopt;
using namespace voteopt::bench;

int main(int argc, char** argv) {
  Options options(argc, argv);
  BenchEnv env = MakeEnv(options, "yelp", /*default_scale=*/0.1);
  const voting::ScoreSpec spec = ParseScoreSpec(
      options, "plurality", env.dataset.state.num_candidates());
  voting::ScoreEvaluator ev = env.MakeEvaluator(spec);
  const baselines::MethodOptions method_options =
      DefaultMethodOptions(options);
  const auto methods = ParseMethods(options);
  const auto k_values = options.GetIntList("k", {10, 25, 50, 100});

  Table scores({"method", "k", "score", "seconds"});
  for (baselines::Method method : methods) {
    for (int64_t k : k_values) {
      const auto result = baselines::SelectWithMethod(
          method, ev, static_cast<uint32_t>(k), method_options);
      scores.Add(baselines::MethodName(method), k,
                 Table::Num(result.score, 2), Table::Num(result.seconds, 4));
    }
  }
  Emit(env,
       "Figs. 6-8: " + voting::ScoreKindName(spec.kind) +
           " score and selection time vs k",
       scores);
  return 0;
}
