// Microbenchmarks (google-benchmark) for the design decisions DESIGN.md
// calls out:
//   1. alias-table vs inverse-CDF in-neighbor sampling (walk inner loop),
//   2. sparse delta propagation vs full re-propagation (DM marginal gains),
//   3. CELF vs plain greedy on the cumulative score,
//   4. raw FJ step (SpMV) throughput,
//   5. Post-Generation Truncation vs regenerating walks per candidate seed.
#include <benchmark/benchmark.h>

#include "core/estimated_greedy.h"
#include "core/greedy_dm.h"
#include "core/walk_engine.h"
#include "core/walk_set.h"
#include "datasets/synthetic.h"
#include "graph/alias_table.h"
#include "opinion/fj_model.h"
#include "voting/evaluator.h"

namespace {

using namespace voteopt;

const datasets::Dataset& SharedDataset() {
  static const datasets::Dataset ds = datasets::MakeDataset(
      datasets::DatasetName::kTwitterMask, /*scale=*/0.1, /*seed=*/3);
  return ds;
}

const voting::ScoreEvaluator& SharedEvaluator() {
  static opinion::FJModel model(SharedDataset().influence);
  static const voting::ScoreEvaluator ev(model, SharedDataset().state,
                                         SharedDataset().default_target, 10,
                                         voting::ScoreSpec::Cumulative());
  return ev;
}

// --- 1. sampling strategies -------------------------------------------------

graph::NodeId SampleInNeighborCdf(const graph::Graph& g, graph::NodeId v,
                                  Rng* rng) {
  const auto sources = g.InNeighbors(v);
  if (sources.empty()) return static_cast<graph::NodeId>(-1);
  const auto weights = g.InWeights(v);
  double u = rng->Uniform();
  for (size_t i = 0; i < sources.size(); ++i) {
    if (u < weights[i]) return sources[i];
    u -= weights[i];
  }
  return sources.back();
}

void BM_SampleAlias(benchmark::State& state) {
  const graph::Graph& g = SharedDataset().influence;
  graph::AliasSampler alias(g);
  Rng rng(1);
  graph::NodeId v = 0;
  for (auto _ : state) {
    v = alias.SampleInNeighbor(v % g.num_nodes(), &rng);
    if (v == graph::AliasSampler::kNoNeighbor) v = 0;
    benchmark::DoNotOptimize(v);
    ++v;
  }
}
BENCHMARK(BM_SampleAlias);

void BM_SampleCdf(benchmark::State& state) {
  const graph::Graph& g = SharedDataset().influence;
  Rng rng(1);
  graph::NodeId v = 0;
  for (auto _ : state) {
    v = SampleInNeighborCdf(g, v % g.num_nodes(), &rng);
    if (v == static_cast<graph::NodeId>(-1)) v = 0;
    benchmark::DoNotOptimize(v);
    ++v;
  }
}
BENCHMARK(BM_SampleCdf);

// --- 2. marginal gains: delta propagation vs full re-propagation -----------

void BM_MarginalGainDelta(benchmark::State& state) {
  const auto& ev = SharedEvaluator();
  core::DeltaPropagator propagator(ev);
  propagator.SetSeeds({1, 2, 3});
  graph::NodeId w = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(propagator.MarginalGain(w));
    w = (w + 17) % ev.num_users();
  }
}
BENCHMARK(BM_MarginalGainDelta);

void BM_MarginalGainFullRepropagation(benchmark::State& state) {
  const auto& ev = SharedEvaluator();
  const std::vector<graph::NodeId> seeds = {1, 2, 3};
  const double base = ev.EvaluateSeeds(seeds);
  graph::NodeId w = 0;
  for (auto _ : state) {
    auto with_w = seeds;
    with_w.push_back(w);
    benchmark::DoNotOptimize(ev.EvaluateSeeds(with_w) - base);
    w = (w + 17) % ev.num_users();
  }
}
BENCHMARK(BM_MarginalGainFullRepropagation);

// --- 3. CELF vs plain greedy ------------------------------------------------

void BM_GreedyCelf(benchmark::State& state) {
  const auto& ev = SharedEvaluator();
  core::DMOptions opts;
  opts.use_celf = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::GreedyDMSelect(ev, 10, opts));
  }
}
BENCHMARK(BM_GreedyCelf)->Unit(benchmark::kMillisecond);

void BM_GreedyPlain(benchmark::State& state) {
  const auto& ev = SharedEvaluator();
  core::DMOptions opts;
  opts.use_celf = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::GreedyDMSelect(ev, 10, opts));
  }
}
BENCHMARK(BM_GreedyPlain)->Unit(benchmark::kMillisecond);

// --- 4. FJ step throughput ---------------------------------------------------

void BM_FJStep(benchmark::State& state) {
  const auto& ds = SharedDataset();
  opinion::FJModel model(ds.influence);
  const auto& campaign = ds.state.campaigns[0];
  std::vector<double> current = campaign.initial_opinions;
  std::vector<double> next(current.size());
  for (auto _ : state) {
    model.Step(current, campaign.initial_opinions, campaign.stubbornness,
               &next);
    std::swap(current, next);
    benchmark::DoNotOptimize(current.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.influence.num_edges()));
}
BENCHMARK(BM_FJStep);

// --- 5. truncation vs regeneration -------------------------------------------

void BM_SeedViaTruncation(benchmark::State& state) {
  const auto& ds = SharedDataset();
  const auto& ev = SharedEvaluator();
  graph::AliasSampler alias(ds.influence);
  core::WalkEngine engine(ds.influence, ev.target_campaign(), alias);
  for (auto _ : state) {
    state.PauseTiming();  // walk generation happens once in both variants
    Rng rng(5);
    core::WalkSet walks(ds.influence.num_nodes());
    std::vector<graph::NodeId> scratch;
    for (graph::NodeId v = 0; v < ds.influence.num_nodes(); ++v) {
      for (int j = 0; j < 4; ++j) {
        engine.Generate(v, 10, &rng, &scratch);
        walks.AddWalk(scratch);
      }
    }
    walks.Finalize(ev.target_campaign().initial_opinions);
    state.ResumeTiming();
    for (graph::NodeId s = 0; s < 10; ++s) {
      walks.Truncate(s * 13 % ds.influence.num_nodes(),
                     [](uint32_t, double) {});
    }
  }
}
BENCHMARK(BM_SeedViaTruncation)->Unit(benchmark::kMillisecond);

void BM_SeedViaRegeneration(benchmark::State& state) {
  const auto& ds = SharedDataset();
  const auto& ev = SharedEvaluator();
  graph::AliasSampler alias(ds.influence);
  core::WalkEngine engine(ds.influence, ev.target_campaign(), alias);
  std::vector<bool> is_seed(ds.influence.num_nodes(), false);
  for (auto _ : state) {
    // Direct Generation: regenerate every walk for each new seed set.
    Rng rng(5);
    for (graph::NodeId s = 0; s < 10; ++s) {
      is_seed[s * 13 % ds.influence.num_nodes()] = true;
      double total = 0.0;
      for (graph::NodeId v = 0; v < ds.influence.num_nodes(); ++v) {
        for (int j = 0; j < 4; ++j) {
          total += engine.GenerateWithSeeds(v, 10, is_seed, &rng);
        }
      }
      benchmark::DoNotOptimize(total);
    }
    std::fill(is_seed.begin(), is_seed.end(), false);
  }
}
BENCHMARK(BM_SeedViaRegeneration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
