// Selection hot-path benchmark: the two algorithmic rewrites of the greedy
// engine, measured against the exact paths they replace — now driven
// end-to-end through the typed query API (api::Engine), so the numbers are
// what a serving deployment actually pays and the equalities prove the API
// path answers exactly what the core algorithms answer.
//
//  * top-k — CELF lazy greedy (max-heap of stale upper bounds, cumulative
//    score; QueryOptions::lazy = true) vs the exhaustive
//    one-scan-per-iteration baseline (lazy = false). Both paths must
//    select bit-identical seeds; the win is the collapse in marginal-gain
//    evaluations.
//  * min-seed — single-pass Algorithm 2 (one selection at k_max, winning
//    criterion checked per greedy prefix; QueryOptions::single_pass =
//    true) vs the binary search that pays a full ResetValues + reselection
//    per probe (single_pass = false). Both must return the same k*,
//    seeds, and achievability.
//
// Every configuration's equality checks roll up into "answers_match" — the
// acceptance gate recorded in BENCH_select.json and enforced in CI.
//
//   --dataset=<name>     synthetic dataset (default tw-mask)
//   --scales=<list>      node-count multipliers, e.g. 0.1,0.25,0.5
//   --theta=<N>          sketch walks (default 2^16)
//   --k=<N>              top-k budget (default 50)
//   --k_max=<N>          min-seed search bound (default 64)
//   --repeats=<N>        best-of-N per timing (default 3)
//   --json_out=<p>       dump BENCH_select.json
#include "bench_common.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "api/engine.h"
#include "util/timer.h"

using namespace voteopt;
using namespace voteopt::bench;

namespace {

struct TopKRow {
  double exhaustive_sec = 0.0, lazy_sec = 0.0;
  double exhaustive_evals = 0.0, lazy_evals = 0.0;
  bool answers_match = false;
  double speedup() const { return exhaustive_sec / lazy_sec; }
};

struct MinSeedRow {
  double search_sec = 0.0, single_pass_sec = 0.0;
  uint32_t search_calls = 0, single_pass_calls = 0;
  uint32_t k_star = 0;
  bool achievable = false;
  bool answers_match = false;
  double speedup() const { return search_sec / single_pass_sec; }
};

struct Row {
  double scale = 0.0;
  uint32_t n = 0;
  uint64_t m = 0;
  TopKRow topk;
  MinSeedRow minseed;
};

api::Response MustExecute(api::Engine& engine, const api::Request& request) {
  api::Response response = engine.Execute(request);
  if (!response.ok) {
    std::cerr << "query failed: " << response.error << "\n";
    std::exit(1);
  }
  return response;
}

}  // namespace

int main(int argc, char** argv) {
  Options options(argc, argv);
  const datasets::DatasetName name =
      ParseDatasetOrDie(options.GetString("dataset", "tw-mask"));
  const std::vector<double> scales =
      options.GetDoubleList("scales", {0.1, 0.25, 0.5});
  const auto theta = static_cast<uint64_t>(options.GetInt("theta", 1 << 16));
  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 50));
  const uint32_t k_max = static_cast<uint32_t>(options.GetInt("k_max", 64));
  const int repeats =
      std::max<int>(1, static_cast<int>(options.GetInt("repeats", 3)));
  const auto seed = static_cast<uint64_t>(options.GetInt("seed", 1));
  const double mu = options.GetDouble("mu", 10.0);
  const auto horizon = static_cast<uint32_t>(options.GetInt("t", 10));
  const bool csv = options.GetBool("csv", false);

  std::vector<Row> rows;
  bool all_match = true;

  for (const double scale : scales) {
    const datasets::Dataset ds = datasets::MakeDataset(name, scale, seed, mu);
    Row row;
    row.scale = scale;
    row.n = ds.influence.num_nodes();
    row.m = ds.influence.num_edges();

    // One engine per scale hosting the instance twice: once with the
    // default target (the top-k scenario) and once targeting the horizon
    // underdog (Problem 2 needs a trailing candidate; cf. bench_min_seeds).
    auto engine = api::Engine::Open({});
    if (!engine.ok()) {
      std::cerr << engine.status().ToString() << "\n";
      return 1;
    }
    api::HostOptions host;
    host.theta = theta;
    host.horizon = horizon;
    host.rng_seed = seed;
    if (Status st = (*engine)->Host("topk", ds, host); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    {
      opinion::FJModel model(ds.influence);
      voting::ScoreEvaluator probe(model, ds.state, 0, horizon,
                                   voting::ScoreSpec::Plurality());
      const auto scores = probe.ScoresAllCandidates(probe.HorizonOpinions(0));
      uint32_t target = ds.default_target;
      for (opinion::CandidateId q = 1; q < scores.size(); ++q) {
        if (scores[q] < scores[target]) target = q;
      }
      host.target = target;
    }
    if (Status st = (*engine)->Host("minseed", ds, host); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }

    // ---- top-k: exhaustive vs CELF on the hosted cumulative sketch ------
    {
      const uint32_t budget = std::min(k, row.n);
      api::Request request =
          api::Request::TopK(budget, voting::ScoreSpec::Cumulative());
      request.dataset = "topk";
      request.options.evaluate_exact = false;  // time pure selection

      api::Response exhaustive, lazy;
      request.options.lazy = false;
      row.topk.exhaustive_sec = BestOfSeconds(
          repeats, [&] { exhaustive = MustExecute(**engine, request); });
      request.options.lazy = true;
      row.topk.lazy_sec =
          BestOfSeconds(repeats, [&] { lazy = MustExecute(**engine, request); });
      row.topk.exhaustive_evals =
          exhaustive.diagnostics.at("gain_evaluations");
      row.topk.lazy_evals = lazy.diagnostics.at("gain_evaluations");
      row.topk.answers_match =
          exhaustive.seeds == lazy.seeds &&
          exhaustive.estimated_score == lazy.estimated_score;
    }

    // ---- min-seed: binary search vs single pass on the underdog's
    //      plurality sketch ----------------------------------------------
    {
      api::Request request =
          api::Request::MinSeed(k_max, voting::ScoreSpec::Plurality());
      request.dataset = "minseed";
      request.options.evaluate_exact = false;

      api::Response searched, single;
      request.options.single_pass = false;
      row.minseed.search_sec = BestOfSeconds(
          repeats, [&] { searched = MustExecute(**engine, request); });
      request.options.single_pass = true;
      row.minseed.single_pass_sec =
          BestOfSeconds(repeats, [&] { single = MustExecute(**engine, request); });
      row.minseed.search_calls = searched.selector_calls;
      row.minseed.single_pass_calls = single.selector_calls;
      row.minseed.k_star = single.k_star;
      row.minseed.achievable = single.achievable;
      row.minseed.answers_match = searched.achievable == single.achievable &&
                                  searched.k_star == single.k_star &&
                                  searched.seeds == single.seeds;
    }

    all_match =
        all_match && row.topk.answers_match && row.minseed.answers_match;
    rows.push_back(row);
  }

  Table table({"scale", "n", "topk exh s", "topk lazy s", "topk speedup",
               "evals exh", "evals lazy", "ms search s", "ms 1pass s",
               "ms speedup", "k*", "match"});
  for (const Row& row : rows) {
    table.Add(Table::Num(row.scale, 2), std::to_string(row.n),
              Table::Num(row.topk.exhaustive_sec, 4),
              Table::Num(row.topk.lazy_sec, 4),
              Table::Num(row.topk.speedup(), 2),
              Table::Num(row.topk.exhaustive_evals, 0),
              Table::Num(row.topk.lazy_evals, 0),
              Table::Num(row.minseed.search_sec, 4),
              Table::Num(row.minseed.single_pass_sec, 4),
              Table::Num(row.minseed.speedup(), 2),
              (row.minseed.achievable ? "" : ">") +
                  std::to_string(row.minseed.k_star),
              row.topk.answers_match && row.minseed.answers_match ? "yes"
                                                                  : "NO");
  }
  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    std::cout << "\n== Selection hot path through api::Engine: CELF lazy "
                 "greedy and single-pass min-seed vs the exact baselines "
                 "(dataset="
              << DatasetShortName(name) << ", theta=" << theta << ", k=" << k
              << ", k_max=" << k_max << ", t=" << horizon << ") ==\n\n";
    table.Print(std::cout);
    std::cout << "\n(identical answers required; the speedup is pure "
                 "evaluation-order / search-structure savings)\n";
  }

  if (options.Has("json_out")) {
    const Row& largest = rows.back();
    std::ofstream out(options.GetString("json_out", "BENCH_select.json"));
    out.precision(6);
    out << "{\n  \"bench\": \"bench_select\",\n"
        << "  \"dataset\": \"" << DatasetShortName(name) << "\",\n"
        << "  \"path\": \"api_engine\",\n"
        << "  \"theta\": " << theta << ",\n  \"k\": " << k
        << ",\n  \"k_max\": " << k_max << ",\n  \"horizon\": " << horizon
        << ",\n  \"repeats\": " << repeats
        << ",\n  \"host\": " << HostMetadataJson() << ",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      out << "    {\"scale\": " << row.scale << ", \"n\": " << row.n
          << ", \"m\": " << row.m << ",\n     \"topk\": {\"exhaustive_sec\": "
          << row.topk.exhaustive_sec << ", \"lazy_sec\": " << row.topk.lazy_sec
          << ", \"speedup\": " << row.topk.speedup()
          << ", \"exhaustive_gain_evals\": " << row.topk.exhaustive_evals
          << ", \"lazy_gain_evals\": " << row.topk.lazy_evals
          << ", \"answers_match\": "
          << (row.topk.answers_match ? "true" : "false")
          << "},\n     \"minseed\": {\"binary_search_sec\": "
          << row.minseed.search_sec
          << ", \"single_pass_sec\": " << row.minseed.single_pass_sec
          << ", \"speedup\": " << row.minseed.speedup()
          << ", \"binary_search_selector_calls\": " << row.minseed.search_calls
          << ", \"single_pass_selector_calls\": "
          << row.minseed.single_pass_calls
          << ", \"k_star\": " << row.minseed.k_star << ", \"achievable\": "
          << (row.minseed.achievable ? "true" : "false")
          << ", \"answers_match\": "
          << (row.minseed.answers_match ? "true" : "false") << "}}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"largest\": {\"n\": " << largest.n
        << ", \"topk_speedup\": " << largest.topk.speedup()
        << ", \"minseed_speedup\": " << largest.minseed.speedup()
        << "},\n  \"answers_match_all\": " << (all_match ? "true" : "false")
        << "\n}\n";
  }
  if (!all_match) {
    std::cerr << "ERROR: optimized selection paths diverged from the exact "
                 "baselines\n";
    return 1;
  }
  return 0;
}
