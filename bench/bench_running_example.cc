// Paper Table I: scores of candidate c1 for every seed set of the running
// example (Fig. 1) at t = 1. Exact reproduction — digits must match the
// paper (this doubles as a smoke test of the whole FJ/voting stack).
#include <iostream>

#include "opinion/fj_model.h"
#include "util/table.h"
#include "voting/scores.h"
#include "graph/builder.h"

namespace {

using namespace voteopt;

struct Fixture {
  graph::Graph graph;
  opinion::MultiCampaignState state;
};

Fixture MakeFixture() {
  graph::GraphBuilder builder(4);
  builder.AddEdge(0, 2, 0.5);
  builder.AddEdge(1, 2, 0.5);
  builder.AddEdge(2, 3, 1.0);
  Fixture f;
  f.graph = std::move(builder.Build()).value();
  f.state.campaigns.resize(2);
  f.state.campaigns[0].initial_opinions = {0.40, 0.80, 0.60, 0.90};
  f.state.campaigns[0].stubbornness = {1.0, 1.0, 0.5, 0.5};
  f.state.campaigns[1].initial_opinions = {0.35, 0.75, 0.78, 0.90};
  f.state.campaigns[1].stubbornness = {1.0, 1.0, 1.0, 1.0};
  return f;
}

std::string SeedSetName(const std::vector<graph::NodeId>& seeds) {
  if (seeds.empty()) return "{}";
  std::string out = "{";
  for (size_t i = 0; i < seeds.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(seeds[i] + 1);  // paper users are 1-based
  }
  return out + "}";
}

}  // namespace

int main() {
  const Fixture f = MakeFixture();
  opinion::FJModel model(f.graph);
  const auto c2 = model.Propagate(f.state.campaigns[1], 1);

  std::cout << "== Table I: scores of c1 for various seed sets at t=1 ==\n"
            << "c2 opinions at t=1: " << c2[0] << " " << c2[1] << " " << c2[2]
            << " " << c2[3] << "\n\n";

  Table table({"Seed Set", "u1", "u2", "u3", "u4", "Cumu.", "Plu.", "Cope."});
  const std::vector<std::vector<graph::NodeId>> seed_sets = {
      {}, {0}, {1}, {2}, {3}, {0, 1}};
  for (const auto& seeds : seed_sets) {
    voting::OpinionMatrix m(2);
    m[0] = model.PropagateWithSeeds(f.state.campaigns[0], seeds, 1);
    m[1] = c2;
    table.Add(SeedSetName(seeds), Table::Num(m[0][0], 2),
              Table::Num(m[0][1], 2), Table::Num(m[0][2], 2),
              Table::Num(m[0][3], 2),
              Table::Num(voting::Score(m, 0, voting::ScoreSpec::Cumulative()),
                         2),
              Table::Num(voting::Score(m, 0, voting::ScoreSpec::Plurality())),
              Table::Num(voting::Score(m, 0, voting::ScoreSpec::Copeland())));
  }
  table.Print(std::cout);
  std::cout << "\nPaper row check: {} -> 2.55/2/0, {1} -> 3.30/2/0, "
               "{3} -> 3.15/4/1, {1,2} -> 3.55/3/1\n";
  return 0;
}
