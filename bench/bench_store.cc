// Store subsystem benchmark: what does persisting the RS sketch artifact
// buy at query time?
//
// Two comparisons on the bench dataset:
//
// 1. ARTIFACT (cumulative, fixed theta): bare BuildSketchSet + top-k vs
//    SaveSketch once, then LoadSketch (mmap and copy) + ResetValues +
//    the same top-k. Verifies the loaded sketch selects identical seeds.
//
// 2. PIPELINE (plurality): what a fresh process must actually run to
//    answer a rank-based query with the paper's guarantees — the § VI-E
//    theta-convergence estimation (a full sketch build + greedy per
//    doubling) plus the final build — versus serving the persisted
//    artifact: load + reset + query. This is the offline/online split the
//    store exists for; the headline "speedup_serve_vs_rebuild" is this
//    ratio and the acceptance bar is >= 5x.
//
//   --theta=<N>      walks for the artifact section (default 2^18)
//   --k=<N>          query budget (default 25)
//   --threads=<N>    builder threads (0 = hardware)
//   --json_out=<p>   dump BENCH_store.json
#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>

#include "core/estimated_greedy.h"
#include "core/sketch.h"
#include "store/sketch_store.h"
#include "util/timer.h"

using namespace voteopt;
using namespace voteopt::bench;

int main(int argc, char** argv) {
  Options options(argc, argv);
  // Yelp is the default: its 10-candidate field makes the rank-based
  // pipeline (theta convergence) realistically expensive.
  BenchEnv env = MakeEnv(options, "yelp", /*default_scale=*/0.3);
  const auto theta = static_cast<uint64_t>(options.GetInt("theta", 1 << 18));
  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 25));
  core::SketchBuildOptions build_options;
  build_options.num_threads =
      static_cast<uint32_t>(options.GetInt("threads", 0));
  const std::string path =
      options.GetString("store_path", "./bench_store.sketch");

  voting::ScoreEvaluator ev =
      env.MakeEvaluator(voting::ScoreSpec::Cumulative());
  const auto& opinions =
      env.dataset.state.campaigns[env.dataset.default_target]
          .initial_opinions;

  // --- rebuild from scratch + query (the no-store baseline) --------------
  WallTimer timer;
  auto built = core::BuildSketchSet(ev, theta, /*master_seed=*/7,
                                    build_options);
  const double rebuild_sec = timer.Seconds();
  timer.Restart();
  const core::SelectionResult built_query =
      core::EstimatedGreedySelect(ev, k, built.get());
  const double query_sec = timer.Seconds();

  // --- save once (offline) -----------------------------------------------
  const store::SketchMeta meta{theta, env.horizon,
                               env.dataset.default_target, 7};
  timer.Restart();
  if (Status st = store::SaveSketch(*built, meta, path); !st.ok()) {
    std::cerr << "save failed: " << st.ToString() << "\n";
    return 1;
  }
  const double save_sec = timer.Seconds();
  uint64_t file_bytes = 0;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    file_bytes = static_cast<uint64_t>(in.tellg());
  }

  // --- load + query, both modes ------------------------------------------
  double load_sec[2] = {0, 0}, loaded_query_sec[2] = {0, 0};
  bool seeds_match[2] = {false, false};
  const store::SketchLoadMode modes[2] = {store::SketchLoadMode::kMmap,
                                          store::SketchLoadMode::kCopy};
  const char* mode_names[2] = {"mmap", "copy"};
  for (int m = 0; m < 2; ++m) {
    timer.Restart();
    auto loaded = store::LoadSketch(path, modes[m]);
    if (!loaded.ok()) {
      std::cerr << "load failed: " << loaded.status().ToString() << "\n";
      return 1;
    }
    loaded->walks->ResetValues(opinions);
    load_sec[m] = timer.Seconds();
    timer.Restart();
    const core::SelectionResult loaded_query =
        core::EstimatedGreedySelect(ev, k, loaded->walks.get());
    loaded_query_sec[m] = timer.Seconds();
    seeds_match[m] = loaded_query.seeds == built_query.seeds;
  }
  std::remove(path.c_str());

  const double rebuild_total = rebuild_sec + query_sec;
  const double mmap_total = load_sec[0] + loaded_query_sec[0];
  const double speedup = rebuild_total / mmap_total;

  Table table({"path", "prepare sec", "query sec", "total sec", "speedup",
               "seeds match"});
  table.Add("rebuild", Table::Num(rebuild_sec, 4), Table::Num(query_sec, 4),
            Table::Num(rebuild_total, 4), Table::Num(1.0, 2), "-");
  for (int m = 0; m < 2; ++m) {
    const double total = load_sec[m] + loaded_query_sec[m];
    table.Add(std::string("load (") + mode_names[m] + ")",
              Table::Num(load_sec[m], 4), Table::Num(loaded_query_sec[m], 4),
              Table::Num(total, 4), Table::Num(rebuild_total / total, 2),
              seeds_match[m] ? "yes" : "NO");
  }
  Emit(env,
       "Store: persisted-sketch load + top-k vs rebuild-from-scratch "
       "(theta=" + std::to_string(theta) + ", k=" + std::to_string(k) +
           ", save " + Table::Num(save_sec, 3) + " s, file " +
           std::to_string(file_bytes / (1024 * 1024)) + " MiB)",
       table);

  // --- the pipeline comparison: serve vs rebuild-from-scratch ------------
  // Plurality takes the § VI-E route: a fresh process without the artifact
  // must run the convergence estimation before it can even size the final
  // build. The persisted sketch replaces the whole pipeline.
  // Best-of-N on both paths: the container's single core makes individual
  // runs noisy, and min is the standard noise-robust aggregate.
  const int repeats =
      std::max<int>(1, static_cast<int>(options.GetInt("repeats", 3)));
  voting::ScoreEvaluator ev_rank =
      env.MakeEvaluator(voting::ScoreSpec::Plurality());
  double pipeline_sec = std::numeric_limits<double>::infinity();
  uint64_t theta_star = 0;
  std::vector<graph::NodeId> pipeline_seeds;
  for (int trial = 0; trial < repeats; ++trial) {
    timer.Restart();
    theta_star = core::EstimateThetaByConvergence(
        ev_rank, k, /*theta_start=*/256, /*theta_cap=*/uint64_t{1} << 22,
        /*tol=*/0.02, /*rng_seed=*/7);
    auto pipeline_walks =
        core::BuildSketchSet(ev_rank, theta_star, /*master_seed=*/7,
                             build_options);
    const core::SelectionResult pipeline_query =
        core::EstimatedGreedySelect(ev_rank, k, pipeline_walks.get());
    pipeline_sec = std::min(pipeline_sec, timer.Seconds());
    pipeline_seeds = pipeline_query.seeds;
    if (trial == 0) {
      const store::SketchMeta rank_meta{theta_star, env.horizon,
                                        env.dataset.default_target, 7};
      if (Status st = store::SaveSketch(*pipeline_walks, rank_meta, path);
          !st.ok()) {
        std::cerr << "save failed: " << st.ToString() << "\n";
        return 1;
      }
    }
  }
  double serve_sec = std::numeric_limits<double>::infinity();
  bool pipeline_seeds_match = true;
  for (int trial = 0; trial < repeats; ++trial) {
    timer.Restart();
    auto served = store::LoadSketch(path, store::SketchLoadMode::kMmap);
    if (!served.ok()) {
      std::cerr << "load failed: " << served.status().ToString() << "\n";
      return 1;
    }
    served->walks->ResetValues(opinions);
    const core::SelectionResult served_query =
        core::EstimatedGreedySelect(ev_rank, k, served->walks.get());
    serve_sec = std::min(serve_sec, timer.Seconds());
    pipeline_seeds_match =
        pipeline_seeds_match && served_query.seeds == pipeline_seeds;
  }
  const double pipeline_speedup = pipeline_sec / serve_sec;
  std::remove(path.c_str());

  Table pipeline_table({"path", "total sec", "speedup", "seeds match"});
  pipeline_table.Add("rebuild (theta est + build + query)",
                     Table::Num(pipeline_sec, 4), Table::Num(1.0, 2), "-");
  pipeline_table.Add("serve (load + query)", Table::Num(serve_sec, 4),
                     Table::Num(pipeline_speedup, 2),
                     pipeline_seeds_match ? "yes" : "NO");
  Emit(env,
       "Store: serving the persisted artifact vs the full RS pipeline "
       "(plurality, theta*=" + std::to_string(theta_star) +
           ", k=" + std::to_string(k) + ")",
       pipeline_table);

  if (options.Has("json_out")) {
    std::ofstream out(options.GetString("json_out", "BENCH_store.json"));
    out.precision(6);
    out << "{\n  \"bench\": \"bench_store\",\n"
        << "  \"dataset\": \"" << env.dataset.name << "\",\n"
        << "  \"n\": " << env.num_nodes()
        << ",\n  \"m\": " << env.graph().num_edges()
        << ",\n  \"theta\": " << theta << ",\n  \"k\": " << k
        << ",\n  \"horizon\": " << env.horizon
        << ",\n  \"file_bytes\": " << file_bytes
        << ",\n  \"host\": " << HostMetadataJson()
        << ",\n  \"rows\": [\n"
        << "    {\"path\": \"rebuild\", \"prepare_sec\": " << rebuild_sec
        << ", \"query_sec\": " << query_sec << "},\n"
        << "    {\"path\": \"save\", \"prepare_sec\": " << save_sec
        << ", \"query_sec\": 0},\n"
        << "    {\"path\": \"load_mmap\", \"prepare_sec\": " << load_sec[0]
        << ", \"query_sec\": " << loaded_query_sec[0]
        << ", \"seeds_match\": " << (seeds_match[0] ? "true" : "false")
        << "},\n"
        << "    {\"path\": \"load_copy\", \"prepare_sec\": " << load_sec[1]
        << ", \"query_sec\": " << loaded_query_sec[1]
        << ", \"seeds_match\": " << (seeds_match[1] ? "true" : "false")
        << "}\n  ],\n  \"speedup_load_mmap_vs_rebuild\": " << speedup
        << ",\n  \"pipeline\": {\"rule\": \"plurality\", \"theta_star\": "
        << theta_star << ", \"rebuild_sec\": " << pipeline_sec
        << ", \"serve_sec\": " << serve_sec << ", \"seeds_match\": "
        << (pipeline_seeds_match ? "true" : "false") << "},\n"
        << "  \"speedup_serve_vs_rebuild\": " << pipeline_speedup << "\n}\n";
  }
  if (!seeds_match[0] || !seeds_match[1] || !pipeline_seeds_match) {
    std::cerr << "ERROR: loaded sketch selected different seeds\n";
    return 1;
  }
  return 0;
}
