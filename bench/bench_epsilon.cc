// Paper Fig. 15 (Twitter US Election): cumulative score and seed-finding
// time of RS vs the approximation slack epsilon (Thm. 13 controls theta).
//
// Shapes to reproduce: the score drops noticeably from eps = 0.1 to 0.2
// (the paper picks 0.1 as default); time falls steeply as eps grows
// (theta ~ 1/eps^2).
#include "bench_common.h"

#include "core/rs_greedy.h"

using namespace voteopt;
using namespace voteopt::bench;

int main(int argc, char** argv) {
  Options options(argc, argv);
  BenchEnv env = MakeEnv(options, "tw-elec");
  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 25));
  voting::ScoreEvaluator ev =
      env.MakeEvaluator(voting::ScoreSpec::Cumulative());
  const auto eps_values =
      options.GetDoubleList("eps", {0.05, 0.1, 0.15, 0.2, 0.25, 0.3});

  Table table({"epsilon", "theta", "score", "seconds"});
  for (double eps : eps_values) {
    core::RSOptions rs;
    rs.epsilon = eps;
    rs.theta_cap = static_cast<uint64_t>(options.GetInt("theta_cap", 1 << 21));
    const auto result = core::RSGreedySelect(ev, k, rs);
    table.Add(Table::Num(eps, 2),
              static_cast<int64_t>(result.diagnostics.at("theta")),
              Table::Num(result.score, 2), Table::Num(result.seconds, 4));
  }
  Emit(env, "Fig. 15: cumulative score and time vs epsilon (RS, k=" +
                std::to_string(k) + ")",
       table);
  return 0;
}
