// Dynamic-graph benchmark: incremental sketch repair vs rebuild from
// scratch under streaming churn.
//
// One base sketch is built over the bench dataset, then for each churn
// level (default 0.1% / 1% / 10% of edges mutated, half adds half
// deletes) the same patched graph is brought up to date two ways:
//
//   incremental — dyn::SketchRepairer: dirty walks from the inverted
//                 index, row-level alias rebuild, splice reassembly;
//   rebuild     — core::BuildSketchSet over the patched graph.
//
// Both paths are seeded identically, so by determinism ledger entry #10
// they must select the SAME seeds at the same estimated score; the
// "answers_match" field records that check and the binary fails if it
// ever comes back false. The headline is the speedup column: repair wins
// big at low churn and degrades gracefully toward rebuild cost as the
// dirty-walk fraction approaches one.
//
//   --theta=<N>     sketch walks (default 2^16)
//   --k=<N>         query budget for the answers_match check (default 25)
//   --threads=<N>   repair/build threads (0 = hardware)
//   --repeats=<N>   best-of-N timing (default 3)
//   --json_out=<p>  dump BENCH_dyn.json
#include "bench_common.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <memory>
#include <vector>

#include "core/estimated_greedy.h"
#include "core/sketch.h"
#include "dyn/mutation.h"
#include "dyn/repair.h"
#include "graph/alias_table.h"
#include "store/sketch_store.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace voteopt;
using namespace voteopt::bench;

namespace {

constexpr uint64_t kMasterSeed = 7;

// A directed edge u -> v not present in `graph`, walked deterministically
// from `salt` (the dyn test fixtures' non-edge finder).
dyn::Mutation AbsentEdgeAdd(const graph::Graph& graph, uint64_t salt) {
  const uint32_t n = graph.num_nodes();
  for (uint64_t step = 0; step < 65536; ++step) {
    const uint32_t u = static_cast<uint32_t>((salt + step * 7) % n);
    const uint32_t v = static_cast<uint32_t>((salt * 3 + step * 11 + 1) % n);
    if (u == v) continue;
    auto in = graph.InNeighbors(v);
    if (std::find(in.begin(), in.end(), u) == in.end()) {
      return dyn::Mutation::EdgeAdd(u, v, 1.0);
    }
  }
  std::cerr << "no absent edge found\n";
  std::exit(1);
}

// `count` churn mutations against `graph`: alternating adds (absent
// edges) and deletes (existing edges whose row keeps >= 2 entries), all
// valid when applied in order because adds and deletes never collide —
// deletes draw from the original edge set, adds from outside it.
std::vector<dyn::Mutation> MakeChurn(const graph::Graph& graph,
                                     uint64_t count, Rng* rng) {
  std::vector<dyn::Mutation> mutations;
  mutations.reserve(count);
  std::vector<std::pair<uint32_t, uint32_t>> deleted, added;
  auto fresh_add = [&] {
    for (;;) {
      const dyn::Mutation add = AbsentEdgeAdd(graph, rng->Next());
      const std::pair<uint32_t, uint32_t> key{add.u, add.v};
      if (std::find(added.begin(), added.end(), key) == added.end()) {
        added.push_back(key);
        return add;
      }
    }
  };
  while (mutations.size() < count) {
    if (mutations.size() % 2 == 0) {
      mutations.push_back(fresh_add());
    } else {
      bool found = false;
      for (int attempt = 0; attempt < 256 && !found; ++attempt) {
        const uint32_t v =
            static_cast<uint32_t>(rng->UniformInt(graph.num_nodes()));
        auto in = graph.InNeighbors(v);
        if (in.size() < 3) continue;
        const uint32_t u = in[rng->UniformInt(in.size())];
        const std::pair<uint32_t, uint32_t> key{u, v};
        if (std::find(deleted.begin(), deleted.end(), key) != deleted.end()) {
          continue;
        }
        deleted.push_back(key);
        mutations.push_back(dyn::Mutation::EdgeDel(u, v));
        found = true;
      }
      if (!found) mutations.push_back(fresh_add());
    }
  }
  return mutations;
}

}  // namespace

int main(int argc, char** argv) {
  Options options(argc, argv);
  BenchEnv env = MakeEnv(options, "tw-mask", /*default_scale=*/0.5);
  const auto theta = static_cast<uint64_t>(options.GetInt("theta", 1 << 16));
  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 25));
  const int repeats =
      std::max<int>(1, static_cast<int>(options.GetInt("repeats", 3)));
  core::SketchBuildOptions build_options;
  build_options.num_threads =
      static_cast<uint32_t>(options.GetInt("threads", 0));
  const double churns[3] = {0.001, 0.01, 0.10};

  const graph::Graph& base_graph = env.graph();
  const opinion::CandidateId target = env.dataset.default_target;
  voting::ScoreEvaluator base_ev =
      env.MakeEvaluator(voting::ScoreSpec::Cumulative());

  // The standing substrate a dynamic host amortizes across every commit:
  // the base sketch and its alias tables.
  WallTimer timer;
  auto base = core::BuildSketchSet(base_ev, theta, kMasterSeed, build_options);
  const double base_build_sec = timer.Seconds();
  timer.Restart();
  const graph::AliasSampler base_alias(base_graph);
  const double base_alias_sec = timer.Seconds();
  const store::SketchMeta meta{theta, env.horizon, target, kMasterSeed};

  struct Row {
    double churn = 0;
    uint64_t mutations = 0, dirty_nodes = 0, walks_repaired = 0;
    double repair_sec = 0, rebuild_sec = 0;
    bool answers_match = false;
  };
  std::vector<Row> rows;
  bool all_match = true;

  for (const double churn : churns) {
    Row row;
    row.churn = churn;
    row.mutations = std::max<uint64_t>(
        1, static_cast<uint64_t>(churn * base_graph.num_edges()));
    Rng rng(1000 + static_cast<uint64_t>(churn * 1e6));
    const std::vector<dyn::Mutation> mutations =
        MakeChurn(base_graph, row.mutations, &rng);
    auto patched =
        dyn::ApplyMutations(base_graph, env.dataset.state, mutations);
    if (!patched.ok()) {
      std::cerr << "patch failed: " << patched.status().ToString() << "\n";
      return 1;
    }
    row.dirty_nodes = patched->dirty_nodes.size();
    const opinion::Campaign& campaign = patched->state.campaigns[target];

    // --- incremental repair (best of N) ---------------------------------
    dyn::RepairOptions repair_options;
    repair_options.num_threads = build_options.num_threads;
    std::unique_ptr<core::WalkSet> repaired;
    row.repair_sec = std::numeric_limits<double>::infinity();
    for (int trial = 0; trial < repeats; ++trial) {
      timer.Restart();
      auto outcome = dyn::SketchRepairer::Repair(
          *base, patched->graph, campaign, meta, patched->dirty_nodes,
          &base_alias, repair_options);
      row.repair_sec = std::min(row.repair_sec, timer.Seconds());
      if (!outcome.ok()) {
        std::cerr << "repair failed: " << outcome.status().ToString() << "\n";
        return 1;
      }
      row.walks_repaired = outcome->stats.walks_repaired;
      repaired = std::move(outcome->sketch);
    }

    // --- rebuild from scratch (best of N) -------------------------------
    opinion::FJModel patched_model(patched->graph);
    voting::ScoreEvaluator patched_ev(patched_model, patched->state, target,
                                      env.horizon,
                                      voting::ScoreSpec::Cumulative());
    std::unique_ptr<core::WalkSet> rebuilt;
    row.rebuild_sec = std::numeric_limits<double>::infinity();
    for (int trial = 0; trial < repeats; ++trial) {
      timer.Restart();
      rebuilt = core::BuildSketchSet(patched_ev, theta, kMasterSeed,
                                     build_options);
      row.rebuild_sec = std::min(row.rebuild_sec, timer.Seconds());
    }

    // --- the determinism gate -------------------------------------------
    const core::SelectionResult from_repair =
        core::EstimatedGreedySelect(patched_ev, k, repaired.get());
    const core::SelectionResult from_rebuild =
        core::EstimatedGreedySelect(patched_ev, k, rebuilt.get());
    row.answers_match = from_repair.seeds == from_rebuild.seeds &&
                        from_repair.score == from_rebuild.score;
    all_match = all_match && row.answers_match;
    rows.push_back(row);
  }

  Table table({"churn", "mutations", "dirty nodes", "walks repaired",
               "repair sec", "rebuild sec", "speedup", "answers match"});
  for (const Row& row : rows) {
    table.Add(Table::Num(row.churn * 100, 1) + "%",
              std::to_string(row.mutations), std::to_string(row.dirty_nodes),
              std::to_string(row.walks_repaired) + "/" +
                  std::to_string(theta),
              Table::Num(row.repair_sec, 4), Table::Num(row.rebuild_sec, 4),
              Table::Num(row.rebuild_sec / row.repair_sec, 2),
              row.answers_match ? "yes" : "NO");
  }
  Emit(env,
       "Dyn: incremental sketch repair vs rebuild-from-scratch under churn "
       "(theta=" + std::to_string(theta) + ", k=" + std::to_string(k) +
           ", base build " + Table::Num(base_build_sec, 3) + " s, alias " +
           Table::Num(base_alias_sec, 3) + " s)",
       table);

  if (options.Has("json_out")) {
    std::ofstream out(options.GetString("json_out", "BENCH_dyn.json"));
    out.precision(6);
    out << "{\n  \"bench\": \"bench_dyn\",\n"
        << "  \"dataset\": \"" << env.dataset.name << "\",\n"
        << "  \"n\": " << env.num_nodes()
        << ",\n  \"m\": " << base_graph.num_edges()
        << ",\n  \"theta\": " << theta << ",\n  \"k\": " << k
        << ",\n  \"horizon\": " << env.horizon
        << ",\n  \"base_build_sec\": " << base_build_sec
        << ",\n  \"base_alias_sec\": " << base_alias_sec
        << ",\n  \"host\": " << HostMetadataJson() << ",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      out << "    {\"churn\": " << row.churn
          << ", \"mutations\": " << row.mutations
          << ", \"dirty_nodes\": " << row.dirty_nodes
          << ", \"walks_repaired\": " << row.walks_repaired
          << ", \"walks_total\": " << theta
          << ", \"repair_sec\": " << row.repair_sec
          << ", \"rebuild_sec\": " << row.rebuild_sec
          << ", \"speedup\": " << row.rebuild_sec / row.repair_sec
          << ", \"answers_match\": "
          << (row.answers_match ? "true" : "false") << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"answers_match\": " << (all_match ? "true" : "false")
        << "\n}\n";
  }

  if (!all_match) {
    std::cerr << "ERROR: repaired sketch answered differently from rebuild\n";
    return 1;
  }
  return 0;
}
