// Paper Fig. 2: empirical sandwich approximation factor F(S_U)/UB(S_U),
// 100 trials (k = 100..1000 step 100 in the paper; scaled as k-fractions of
// n here). Left panel: plurality on Twitter Social Distancing; right panel:
// Copeland on Yelp. Run twice (once per panel) or use --score/--dataset.
//
// Paper's observation to reproduce: the ratio reaches 0.7 in ~90% of trials
// and exceeds 0.8 in ~50%; worst observed ~0.46; the implied empirical
// approximation factor 0.8*(1-1/e) ~ 0.51.
#include "bench_common.h"

#include "core/sandwich.h"
#include "util/stats.h"

using namespace voteopt;
using namespace voteopt::bench;

int main(int argc, char** argv) {
  Options options(argc, argv);
  const std::string score_name = options.GetString("score", "plurality");
  const std::string default_dataset =
      score_name == "copeland" ? "yelp" : "tw-dist";
  BenchEnv env = MakeEnv(options, default_dataset, /*default_scale=*/0.12);
  const voting::ScoreSpec spec = ParseScoreSpec(
      options, score_name, env.dataset.state.num_candidates());
  voting::ScoreEvaluator ev = env.MakeEvaluator(spec);

  // Trials: k swept across a range of budget fractions, several dataset
  // seeds per k (the paper's 100 trials vary k from 100 to 1000).
  const auto k_values = options.GetIntList("k", {10, 20, 30, 40, 50, 60, 70,
                                                 80, 90, 100});
  Table table({"k", "F(SU)", "UB(SU)", "ratio", "ratio*(1-1/e)"});
  std::vector<double> ratios;
  for (int64_t k : k_values) {
    const auto result =
        core::SandwichSelect(ev, static_cast<uint32_t>(k));
    const double f_su = result.diagnostics.at("score_SU");
    const double ub = result.diagnostics.at("UB_at_SU");
    const double ratio = result.diagnostics.at("sandwich_ratio");
    ratios.push_back(ratio);
    table.Add(k, Table::Num(f_su, 1), Table::Num(ub, 1),
              Table::Num(ratio, 3),
              Table::Num(ratio * (1.0 - 1.0 / 2.718281828), 3));
  }
  Emit(env, "Fig. 2: sandwich approximation factor (" +
                voting::ScoreKindName(spec.kind) + ")",
       table);

  size_t above_07 = 0, above_08 = 0;
  double worst = 1.0;
  for (double r : ratios) {
    above_07 += (r >= 0.7);
    above_08 += (r >= 0.8);
    worst = std::min(worst, r);
  }
  std::cout << "\ntrials=" << ratios.size() << "  ratio>=0.7: "
            << 100.0 * above_07 / ratios.size() << "%  ratio>=0.8: "
            << 100.0 * above_08 / ratios.size() << "%  worst="
            << Table::Num(worst, 3)
            << "  (paper: ~90% / ~50% / 0.46)\n";
  return 0;
}
