// Paper Fig. 12 (Yelp): cumulative score of the selected seeds and seed-
// finding time as functions of the time horizon t = 0..30, for DM, RW, RS.
//
// Shapes to reproduce: the score plateaus around t ~ 20 (the paper's
// default); DM's time grows linearly in t while RW/RS are much flatter
// (walks usually stop before t steps).
#include "bench_common.h"

using namespace voteopt;
using namespace voteopt::bench;

int main(int argc, char** argv) {
  Options options(argc, argv);
  BenchEnv env = MakeEnv(options, "yelp");
  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 25));
  const baselines::MethodOptions method_options =
      DefaultMethodOptions(options);
  const auto horizons = options.GetIntList("horizons", {0, 5, 10, 15, 20,
                                                        25, 30});

  Table table({"t", "DM score", "RW score", "RS score", "DM sec", "RW sec",
               "RS sec"});
  for (int64_t t : horizons) {
    env.horizon = static_cast<uint32_t>(t);
    voting::ScoreEvaluator ev =
        env.MakeEvaluator(voting::ScoreSpec::Cumulative());
    const auto dm = baselines::SelectWithMethod(baselines::Method::kDM, ev, k,
                                                method_options);
    const auto rw = baselines::SelectWithMethod(baselines::Method::kRW, ev, k,
                                                method_options);
    const auto rs = baselines::SelectWithMethod(baselines::Method::kRS, ev, k,
                                                method_options);
    table.Add(t, Table::Num(dm.score, 2), Table::Num(rw.score, 2),
              Table::Num(rs.score, 2), Table::Num(dm.seconds, 4),
              Table::Num(rw.seconds, 4), Table::Num(rs.seconds, 4));
  }
  Emit(env, "Fig. 12: cumulative score and time vs horizon t (k=" +
                std::to_string(k) + ")",
       table);
  return 0;
}
