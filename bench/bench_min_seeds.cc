// Paper Table VI: minimum seed-set size for the target candidate to win
// w.r.t. the plurality score (Problem 2 / Algorithm 2), on the two Twitter
// COVID datasets, for DM, RW and RS.
//
// Shape to reproduce: the more approximate the method, the larger the
// minimum winning budget (DM <= RW <= RS, usually).
#include "bench_common.h"

#include "core/min_seed.h"

using namespace voteopt;
using namespace voteopt::bench;

int main(int argc, char** argv) {
  Options options(argc, argv);
  baselines::MethodOptions method_options = DefaultMethodOptions(options);
  if (!options.Has("theta")) {
    // Skip RS's theta-convergence heuristic inside the binary search: a
    // fixed sketch budget keeps Algorithm 2's ~log n selector calls cheap.
    method_options.rs.theta_override = 1u << 14;
  }
  const bool csv = options.GetBool("csv", false);
  const double scale = options.GetDouble("scale", 0.06);
  const uint32_t horizon = static_cast<uint32_t>(options.GetInt("t", 10));

  Table table({"Dataset", "DM", "RW", "RS"});
  for (const char* ds_name : {"tw-mask", "tw-dist"}) {
    Options per_ds = options;  // copy: reuse shared flags
    datasets::Dataset ds = datasets::MakeDataset(
        ParseDatasetOrDie(ds_name), scale,
        static_cast<uint64_t>(options.GetInt("seed", 1)),
        options.GetDouble("mu", 10.0));
    opinion::FJModel model(ds.influence);
    // The paper's scenario has the target trailing at the horizon (it needs
    // 17-69 seeds to win). The synthetic campaigns are symmetric, so pick
    // the underdog candidate as the target.
    opinion::CandidateId target = ds.default_target;
    {
      voting::ScoreEvaluator probe(model, ds.state, 0, horizon,
                                   voting::ScoreSpec::Plurality());
      const auto scores =
          probe.ScoresAllCandidates(probe.HorizonOpinions(0));
      for (opinion::CandidateId q = 1; q < scores.size(); ++q) {
        if (scores[q] < scores[target]) target = q;
      }
    }
    voting::ScoreEvaluator ev(model, ds.state, target, horizon,
                              voting::ScoreSpec::Plurality());

    std::vector<std::string> row = {ds_name};
    for (baselines::Method method :
         {baselines::Method::kDM, baselines::Method::kRW,
          baselines::Method::kRS}) {
      const auto selector = baselines::MakeSelector(method, method_options);
      const auto result = core::MinSeedsToWin(
          ev, selector,
          static_cast<uint32_t>(options.GetInt("k_max", 0)));
      row.push_back(result.achievable ? std::to_string(result.k_star)
                                      : ">" + std::to_string(result.k_star));
    }
    table.AddRow(row);
  }
  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    std::cout << "\n== Table VI: minimum seeds for the target to win "
                 "(plurality, t="
              << horizon << ", scale=" << scale << ") ==\n\n";
    table.Print(std::cout);
    std::cout << "\n(paper at full scale: tw-mask 17/21/24, tw-dist "
                 "69/71/74)\n";
  }
  return 0;
}
