// Paper Table III: characteristics of the five datasets. Reports the
// synthetic analogs at the requested --scale next to the paper's original
// sizes, plus weight/opinion sanity statistics.
#include "bench_common.h"

#include "util/stats.h"

using namespace voteopt;
using namespace voteopt::bench;

namespace {

struct PaperSize {
  const char* name;
  uint64_t nodes, edges;
  uint32_t candidates;
};

constexpr PaperSize kPaperSizes[] = {
    {"DBLP", 63910, 2847120, 2},
    {"Yelp", 966240, 8815788, 10},
    {"Twitter US Election", 2246604, 4270918, 4},
    {"Twitter Social Distancing", 3244762, 4202083, 2},
    {"Twitter Mask", 2341769, 3241153, 2},
};

}  // namespace

int main(int argc, char** argv) {
  Options options(argc, argv);
  const double scale = options.GetDouble("scale", 0.2);
  const uint64_t seed = static_cast<uint64_t>(options.GetInt("seed", 1));
  const double mu = options.GetDouble("mu", 10.0);
  const bool csv = options.GetBool("csv", false);

  Table table({"Name", "#Nodes", "#Edges", "#Cand.", "avg in-deg",
               "stochastic", "mean b0", "mean d", "paper #Nodes",
               "paper #Edges"});
  int row = 0;
  for (datasets::DatasetName name : datasets::AllDatasets()) {
    const datasets::Dataset ds = datasets::MakeDataset(name, scale, seed, mu);
    RunningStat b0, d;
    const auto& target = ds.state.campaigns[ds.default_target];
    for (uint32_t v = 0; v < ds.influence.num_nodes(); ++v) {
      b0.Add(target.initial_opinions[v]);
      d.Add(target.stubbornness[v]);
    }
    table.Add(ds.name, ds.influence.num_nodes(), ds.influence.num_edges(),
              ds.state.num_candidates(),
              Table::Num(static_cast<double>(ds.influence.num_edges()) /
                             ds.influence.num_nodes(),
                         2),
              ds.influence.IsColumnStochastic(1e-6) ? "yes" : "NO",
              Table::Num(b0.mean(), 3), Table::Num(d.mean(), 3),
              kPaperSizes[row].nodes, kPaperSizes[row].edges);
    ++row;
  }
  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    std::cout << "\n== Table III: dataset characteristics (scale=" << scale
              << ", mu=" << mu << ") ==\n\n";
    table.Print(std::cout);
  }
  return 0;
}
