// API-layer benchmark: what the unified typed query API costs and what the
// new MethodCompare scenario delivers.
//
//  * dispatch overhead — the same work executed through api::Engine
//    (registry resolve + pooled state lease + evaluator LRU + typed
//    response assembly) vs the hand-rolled core path an embedded caller
//    would otherwise write (evaluator + frozen-view reset + direct
//    selection / propagation). Engine answers must equal the direct
//    answers bit-for-bit; the overhead target for the selection path
//    (topk) is <= 1%. The evaluate row is the worst case by construction:
//    it is the cheapest query in the protocol, so fixed per-query dispatch
//    cost is maximally visible there — recorded for honesty, not gated.
//  * methodcompare — one request runs the paper's § VIII-A roster on one
//    hosted instance; recorded per method: selection seconds and the exact
//    score of its seeds (the table behind the paper's Fig. 12-style
//    comparisons, now a single protocol verb).
//
//   --theta=<N>      sketch walks (default 2^16)
//   --k=<N>          selection budget (default 8)
//   --queries=<N>    evaluate/topk repetitions per timing (default 64/8)
//   --methods=<L>    methodcompare roster (default: all nine)
//   --repeats=<N>    best-of-N per timing (default 3)
//   --json_out=<p>   dump BENCH_api.json
#include "bench_common.h"

#include <algorithm>
#include <fstream>
#include <tuple>
#include <limits>
#include <string>
#include <vector>

#include "api/engine.h"
#include "core/estimated_greedy.h"
#include "util/timer.h"

using namespace voteopt;
using namespace voteopt::bench;

namespace {

/// Timing for a PAIR of per-query workloads, interleaved at QUERY
/// granularity (engine query i, direct query i, engine query i+1, ...)
/// with one accumulating timer per side; the reported pair is the round
/// with the MEDIAN engine/direct ratio. Two defenses, both necessary on
/// a noisy 1-core CI box where identical workloads measured against
/// themselves swing by ±5% per round — bigger than the dispatch effect
/// being measured: per-query interleaving spreads a noise spike across
/// both sides instead of landing it on one, and the median round
/// discards the contaminated outliers that best-of-N would happily pick
/// for whichever side got lucky.
struct PairedTiming {
  double engine_sec = 0.0;
  double direct_sec = 0.0;
  /// Half the spread of the per-round engine/direct ratios, in percent —
  /// how much the rounds of THIS measurement disagreed with each other,
  /// i.e. the measurement's own uncertainty.
  double half_spread_pct = 0.0;
};

template <typename EngineFn, typename DirectFn>
PairedTiming PairedMedian(int repeats, size_t queries,
                          const EngineFn& engine_query,
                          const DirectFn& direct_query) {
  std::vector<std::pair<double, double>> rounds;
  for (int round = 0; round < repeats; ++round) {
    double engine_sec = 0.0;
    double direct_sec = 0.0;
    for (size_t i = 0; i < queries; ++i) {
      WallTimer timer;
      engine_query(i);
      engine_sec += timer.Seconds();
      timer.Restart();
      direct_query(i);
      direct_sec += timer.Seconds();
    }
    rounds.emplace_back(engine_sec, direct_sec);
  }
  std::sort(rounds.begin(), rounds.end(),
            [](const std::pair<double, double>& a,
               const std::pair<double, double>& b) {
              return a.first / a.second < b.first / b.second;
            });
  PairedTiming timing;
  std::tie(timing.engine_sec, timing.direct_sec) = rounds[rounds.size() / 2];
  const double lo = rounds.front().first / rounds.front().second;
  const double hi = rounds.back().first / rounds.back().second;
  timing.half_spread_pct = 100.0 * (hi - lo) / 2.0;
  return timing;
}

struct OverheadRow {
  std::string query;
  double engine_sec = 0.0;
  double direct_sec = 0.0;
  bool answers_match = true;
  double overhead_pct() const {
    return 100.0 * (engine_sec - direct_sec) / direct_sec;
  }
};

struct MethodRow {
  std::string method;
  double seconds = 0.0;
  double exact_score = 0.0;
  size_t num_seeds = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Options options(argc, argv);
  BenchEnv env = MakeEnv(options, "tw-mask", /*default_scale=*/0.1);
  const auto theta = static_cast<uint64_t>(options.GetInt("theta", 1 << 16));
  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 8));
  const size_t evaluate_queries = static_cast<size_t>(
      std::max<int64_t>(1, options.GetInt("queries", 64)));
  const size_t topk_queries = std::max<size_t>(1, evaluate_queries / 8);
  const int repeats =
      std::max<int>(1, static_cast<int>(options.GetInt("repeats", 3)));
  const std::vector<baselines::Method> roster = ParseMethods(options);
  const uint32_t n = env.num_nodes();

  // The engine under test hosts the instance in memory; the "direct" side
  // reuses the same frozen sketch through a zero-copy working view, so
  // both paths do identical algorithmic work on identical walks.
  auto engine = api::Engine::Open({});
  if (!engine.ok()) {
    std::cerr << engine.status().ToString() << "\n";
    return 1;
  }
  api::HostOptions host;
  host.theta = theta;
  host.horizon = env.horizon;
  host.rng_seed = 42;
  if (Status st = (*engine)->Host("bench", env.dataset, host); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  const auto entry = (*engine)->registry().Resolve("bench").value();
  const voting::ScoreEvaluator evaluator(*entry->model, entry->dataset.state,
                                         entry->meta.target,
                                         entry->meta.horizon,
                                         voting::ScoreSpec::Cumulative());
  const auto direct_walks = entry->sketch->ShareFrozen(entry->sketch);

  std::vector<OverheadRow> rows;
  bool all_match = true;
  double topk_half_spread_pct = 0.0;

  // ---- evaluate: the cheapest query => worst-case relative overhead ----
  {
    OverheadRow row;
    row.query = "evaluate";
    std::vector<api::Request> requests;
    for (size_t i = 0; i < evaluate_queries; ++i) {
      api::Request request = api::Request::Evaluate(
          {static_cast<graph::NodeId>(i % n),
           static_cast<graph::NodeId>((i * 7 + 1) % n)},
          voting::ScoreSpec::Cumulative());
      request.overrides = {{static_cast<graph::NodeId>((i * 3) % n),
                            static_cast<double>(i % 10) / 10.0}};
      requests.push_back(std::move(request));
    }
    std::vector<double> engine_scores(requests.size());
    std::vector<double> direct_scores(requests.size());
    std::vector<uint32_t> engine_winners(requests.size());
    std::vector<uint32_t> direct_winners(requests.size());
    auto engine_query = [&](size_t i) {
      const api::Response response = (*engine)->Execute(requests[i]);
      engine_scores[i] = response.score;
      engine_winners[i] = response.winner;
    };
    auto direct_query = [&](size_t i) {
      // What HandleEvaluate computes — target score, all-candidate
      // scores, winner — hand-rolled on the core API.
      opinion::Campaign campaign =
          entry->dataset.state.campaigns[entry->meta.target];
      for (const auto& [user, opinion] : requests[i].overrides) {
        campaign.initial_opinions[user] = opinion;
      }
      const std::vector<double> target_row = entry->model->PropagateWithSeeds(
          campaign, requests[i].seeds, entry->meta.horizon);
      direct_scores[i] = evaluator.ScoreFromTargetOpinions(target_row);
      const std::vector<double> all =
          evaluator.ScoresAllCandidates(target_row);
      direct_winners[i] = static_cast<uint32_t>(
          std::max_element(all.begin(), all.end()) - all.begin());
    };
    const PairedTiming timing = PairedMedian(
        repeats, requests.size(), engine_query, direct_query);
    row.engine_sec = timing.engine_sec;
    row.direct_sec = timing.direct_sec;
    row.answers_match =
        engine_scores == direct_scores && engine_winners == direct_winners;
    all_match = all_match && row.answers_match;
    rows.push_back(row);
  }

  // ---- topk: the selection path the <=1% dispatch target applies to ----
  {
    OverheadRow row;
    row.query = "topk";
    api::Request request =
        api::Request::TopK(std::min(k, n), voting::ScoreSpec::Cumulative());
    request.dataset = "bench";
    std::vector<graph::NodeId> engine_seeds;
    double engine_exact = 0.0;
    std::vector<graph::NodeId> direct_seeds;
    double direct_exact = 0.0;
    const PairedTiming timing = PairedMedian(
        repeats, topk_queries,
        [&](size_t) {
          const api::Response response = (*engine)->Execute(request);
          engine_seeds = response.seeds;
          engine_exact = response.exact_score;
        },
        [&](size_t) {
          direct_walks->ResetValues(
              evaluator.target_campaign().initial_opinions);
          core::EstimatedGreedyOptions greedy;
          greedy.evaluate_exact = false;
          const core::SelectionResult selection =
              core::EstimatedGreedySelect(evaluator, request.k,
                                          direct_walks.get(), greedy);
          direct_seeds = selection.seeds;
          direct_exact = evaluator.EvaluateSeeds(selection.seeds);
        });
    row.engine_sec = timing.engine_sec;
    row.direct_sec = timing.direct_sec;
    topk_half_spread_pct = timing.half_spread_pct;
    row.answers_match =
        engine_seeds == direct_seeds && engine_exact == direct_exact;
    all_match = all_match && row.answers_match;
    rows.push_back(row);
  }

  // ---- control: engine vs engine — the box's timing noise floor -------
  // Identical workloads on both sides, so any nonzero reading is pure
  // measurement noise. The recorded topk gate compares against
  // target + |noise floor|: on a quiet multi-core host the floor is ~0
  // and the 1% target bites; on a noisy CI container it does not
  // produce false alarms.
  double noise_floor_pct = 0.0;
  {
    api::Request request =
        api::Request::TopK(std::min(k, n), voting::ScoreSpec::Cumulative());
    request.dataset = "bench";
    const auto run = [&](size_t) { (*engine)->Execute(request); };
    const PairedTiming control = PairedMedian(repeats, topk_queries, run, run);
    double control_pct =
        100.0 * (control.engine_sec - control.direct_sec) / control.direct_sec;
    if (control_pct < 0) control_pct = -control_pct;
    // The floor is whichever is larger: the control's bias, or how much
    // the topk measurement's own rounds disagreed with each other.
    noise_floor_pct = std::max(control_pct, topk_half_spread_pct);
  }

  // ---- methodcompare: the roster on one instance, one request ----------
  api::Request compare =
      api::Request::MethodCompare(std::min(k, n),
                                  voting::ScoreSpec::Plurality());
  compare.dataset = "bench";
  compare.methods = roster;
  compare.options.methods = DefaultMethodOptions(options);
  const api::Response comparison = (*engine)->Execute(compare);
  if (!comparison.ok) {
    std::cerr << "methodcompare failed: " << comparison.error << "\n";
    return 1;
  }
  std::vector<MethodRow> methods;
  for (const api::MethodScore& entry_score : comparison.method_scores) {
    methods.push_back({entry_score.method, entry_score.seconds,
                       entry_score.exact_score, entry_score.seeds.size()});
  }

  Table overhead_table(
      {"query", "engine sec", "direct sec", "overhead %", "answers match"});
  for (const OverheadRow& row : rows) {
    overhead_table.Add(row.query, Table::Num(row.engine_sec, 5),
                       Table::Num(row.direct_sec, 5),
                       Table::Num(row.overhead_pct(), 2),
                       row.answers_match ? "yes" : "NO");
  }
  Emit(env,
       "API dispatch overhead: api::Engine vs hand-rolled core path "
       "(theta=" + std::to_string(theta) + ", k=" + std::to_string(k) +
           ", " + std::to_string(evaluate_queries) + " evaluates / " +
           std::to_string(topk_queries) + " topks per pass)",
       overhead_table);
  std::cout << "(timing noise floor — max of the engine-vs-engine control "
               "and the topk rounds' half-spread: "
            << Table::Num(noise_floor_pct, 2)
            << "%; the overhead target gates at target + floor)\n";

  Table method_table({"method", "select sec", "exact score", "seeds"});
  for (const MethodRow& row : methods) {
    method_table.Add(row.method, Table::Num(row.seconds, 4),
                     Table::Num(row.exact_score, 2),
                     std::to_string(row.num_seeds));
  }
  Emit(env,
       "MethodCompare: the nine-method roster on one hosted instance "
       "(plurality, k=" + std::to_string(k) + ")",
       method_table);

  const double topk_overhead = rows.back().overhead_pct();
  if (options.Has("json_out")) {
    std::ofstream out(options.GetString("json_out", "BENCH_api.json"));
    out.precision(6);
    out << "{\n  \"bench\": \"bench_api\",\n"
        << "  \"dataset\": \"" << env.dataset.name << "\",\n"
        << "  \"n\": " << n << ",\n  \"m\": " << env.graph().num_edges()
        << ",\n  \"theta\": " << theta << ",\n  \"k\": " << k
        << ",\n  \"horizon\": " << env.horizon
        << ",\n  \"repeats\": " << repeats
        << ",\n  \"host\": " << HostMetadataJson()
        << ",\n  \"dispatch_overhead\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const OverheadRow& row = rows[i];
      out << "    {\"query\": \"" << row.query << "\", \"engine_sec\": "
          << row.engine_sec << ", \"direct_sec\": " << row.direct_sec
          << ", \"overhead_pct\": " << row.overhead_pct()
          << ", \"answers_match\": " << (row.answers_match ? "true" : "false")
          << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"overhead_target_pct\": 1.0"
        << ",\n  \"noise_floor_pct\": " << noise_floor_pct
        << ",\n  \"topk_overhead_pct\": " << topk_overhead
        << ",\n  \"topk_overhead_ok\": "
        << (topk_overhead <= 1.0 + noise_floor_pct ? "true" : "false")
        << ",\n  \"methodcompare\": [\n";
    for (size_t i = 0; i < methods.size(); ++i) {
      const MethodRow& row = methods[i];
      out << "    {\"method\": \"" << row.method << "\", \"seconds\": "
          << row.seconds << ", \"exact_score\": " << row.exact_score
          << ", \"k\": " << row.num_seeds << "}"
          << (i + 1 < methods.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"answers_match_all\": " << (all_match ? "true" : "false")
        << "\n}\n";
  }
  if (!all_match) {
    std::cerr << "ERROR: engine answers diverged from the direct core "
                 "path\n";
    return 1;
  }
  return 0;
}
