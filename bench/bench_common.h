// Shared plumbing for the per-figure/table bench binaries: dataset + score
// parsing from --flags, evaluator construction, and uniform table output.
//
// Every binary accepts:
//   --dataset=dblp|yelp|tw-elec|tw-dist|tw-mask   (binary-specific default)
//   --scale=<double>    multiplier on the dataset's default node count
//   --seed=<uint64>     dataset RNG seed
//   --mu=<double>       edge-weight parameter (paper App. D, default 10)
//   --t=<int>           time horizon (paper default 20)
//   --threads=<int>     RS sketch-builder threads (1 = legacy serial stream,
//                       0 = one per hardware thread)
//   --csv               emit CSV instead of an aligned table
// and prints the same rows/series the corresponding paper exhibit reports.
#ifndef VOTEOPT_BENCH_BENCH_COMMON_H_
#define VOTEOPT_BENCH_BENCH_COMMON_H_

#include <iostream>
#include <memory>
#include <string>

#include "baselines/selector_factory.h"
#include "datasets/synthetic.h"
#include "opinion/fj_model.h"
#include "util/options.h"
#include "util/table.h"
#include "voting/evaluator.h"

namespace voteopt::bench {

/// Parses the dataset short name; exits with a message on a bad value.
datasets::DatasetName ParseDatasetOrDie(const std::string& name);

/// Short name for bench labels ("yelp", "tw-mask", ...).
std::string DatasetShortName(datasets::DatasetName name);

/// Parses --score=cumulative|plurality|p-approval|positional|copeland into a
/// spec (uses --p and --omega_p for the approval variants).
voting::ScoreSpec ParseScoreSpec(const Options& options,
                                 const std::string& default_score,
                                 uint32_t num_candidates);

/// A fully materialized problem substrate for one bench run.
struct BenchEnv {
  datasets::Dataset dataset;
  std::unique_ptr<opinion::FJModel> model;
  uint32_t horizon = 20;
  bool csv = false;
  uint64_t seed = 1;
  double scale = 0.2;
  double mu = 10.0;

  const graph::Graph& graph() const { return dataset.influence; }
  uint32_t num_nodes() const { return dataset.influence.num_nodes(); }

  /// Builds the evaluator for a score spec (target = dataset default).
  voting::ScoreEvaluator MakeEvaluator(const voting::ScoreSpec& spec) const {
    return voting::ScoreEvaluator(*model, dataset.state,
                                  dataset.default_target, horizon, spec);
  }
};

/// Builds the environment from common flags.
BenchEnv MakeEnv(const Options& options, const std::string& default_dataset,
                 double default_scale = 0.2);

/// Prints the table honoring --csv, preceded by a header line describing
/// the experiment (skipped in CSV mode).
void Emit(const BenchEnv& env, const std::string& title, const Table& table);

/// Host/build metadata as a JSON object literal, e.g.
///   {"hardware_threads": 8, "build_type": "RelWithDebInfo",
///    "compiler": "gcc 12.2.0", "os": "linux", "pointer_bits": 64}
/// Embedded under the "host" key of every --json_out payload so BENCH_*.json
/// files recorded on different machines are comparable.
std::string HostMetadataJson();

/// Method options tuned for bench scale (caps that keep RW/RS memory sane).
baselines::MethodOptions DefaultMethodOptions(const Options& options);

/// Parses --methods=DM,RW,RS,... (default: all nine).
std::vector<baselines::Method> ParseMethods(const Options& options);

}  // namespace voteopt::bench

#endif  // VOTEOPT_BENCH_BENCH_COMMON_H_
