// Paper Figs. 13 and 14: score of the RS-selected seed set vs the number of
// sketches theta, (a) for several seed budgets k and (b) for several
// horizons t. --score=plurality reproduces Fig. 13 (Twitter Mask);
// --score=copeland reproduces Fig. 14 (Yelp).
//
// Shape to reproduce: the score climbs with theta and converges at some
// theta* << n; theta* is insensitive to k and t (§ VI-E heuristic).
#include "bench_common.h"

#include "core/rs_greedy.h"

using namespace voteopt;
using namespace voteopt::bench;

int main(int argc, char** argv) {
  Options options(argc, argv);
  const std::string score_name = options.GetString("score", "plurality");
  BenchEnv env =
      MakeEnv(options, score_name == "copeland" ? "yelp" : "tw-mask");
  const voting::ScoreSpec spec = ParseScoreSpec(
      options, score_name, env.dataset.state.num_candidates());
  const auto thetas = options.GetIntList(
      "thetas", {64, 128, 256, 512, 1024, 2048, 4096, 8192});

  // Panel (a): vary k at the default horizon.
  {
    const auto k_values = options.GetIntList("k", {10, 25, 50});
    voting::ScoreEvaluator ev = env.MakeEvaluator(spec);
    Table table({"theta", "k=10", "k=25", "k=50"});
    for (int64_t theta : thetas) {
      std::vector<std::string> row = {std::to_string(theta)};
      for (int64_t k : k_values) {
        core::RSOptions rs;
        rs.theta_override = static_cast<uint64_t>(theta);
        const auto result =
            core::RSGreedySelect(ev, static_cast<uint32_t>(k), rs);
        row.push_back(Table::Num(result.score, 2));
      }
      table.AddRow(row);
    }
    Emit(env,
         "Figs. 13/14(a): " + voting::ScoreKindName(spec.kind) +
             " score vs theta, varying k",
         table);
  }

  // Panel (b): vary t at the default k.
  {
    const uint32_t k = static_cast<uint32_t>(options.GetInt("k_fixed", 25));
    const auto t_values = options.GetIntList("horizons", {10, 20, 30});
    Table table({"theta", "t=10", "t=20", "t=30"});
    // Build evaluators once per horizon.
    std::vector<std::unique_ptr<voting::ScoreEvaluator>> evaluators;
    for (int64_t t : t_values) {
      env.horizon = static_cast<uint32_t>(t);
      evaluators.push_back(std::make_unique<voting::ScoreEvaluator>(
          *env.model, env.dataset.state, env.dataset.default_target,
          env.horizon, spec));
    }
    for (int64_t theta : thetas) {
      std::vector<std::string> row = {std::to_string(theta)};
      for (auto& ev : evaluators) {
        core::RSOptions rs;
        rs.theta_override = static_cast<uint64_t>(theta);
        row.push_back(Table::Num(core::RSGreedySelect(*ev, k, rs).score, 2));
      }
      table.AddRow(row);
    }
    Emit(env,
         "Figs. 13/14(b): " + voting::ScoreKindName(spec.kind) +
             " score vs theta, varying t",
         table);
  }
  return 0;
}
