// Paper Fig. 17 (Twitter Social Distancing): seed-finding time and memory
// vs graph size, on node-induced subsamples of the full graph (the paper
// uses 0.5M..3M nodes; here fractions of the synthetic analog).
//
// Shapes to reproduce: RW and RS scale near-linearly in n; the paper's DM
// (greedy with full matrix-vector re-propagation per marginal gain, the
// "DM-naive" column) grows polynomially and dominates. Our optimized DM
// (CELF + sparse delta propagation, the "DM" column) shifts that crossover
// far to the right — an engineering improvement over the paper, quantified
// here and in bench_ablations.
#include "bench_common.h"

#include <fstream>
#include <queue>
#include <sstream>
#include <tuple>

#include "core/sketch.h"
#include "core/walk_engine.h"
#include "sketch_ooc/ooc_builder.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace voteopt;
using namespace voteopt::bench;

int main(int argc, char** argv) {
  Options options(argc, argv);
  BenchEnv env = MakeEnv(options, "tw-dist", /*default_scale=*/0.3);
  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 25));
  const baselines::MethodOptions method_options =
      DefaultMethodOptions(options);
  const auto fractions =
      options.GetDoubleList("fractions", {0.17, 0.33, 0.5, 0.67, 0.83, 1.0});
  const bool include_dm = options.GetBool("dm", true);
  const bool include_naive = options.GetBool("dm_naive", true);

  // The paper's DM: CELF over marginal gains computed by full t-step
  // re-propagation (O(t m) per evaluation, no sparse deltas).
  auto naive_dm_seconds = [&](const voting::ScoreEvaluator& ev,
                              uint32_t budget) {
    WallTimer timer;
    const uint32_t nodes = ev.num_users();
    std::vector<graph::NodeId> seeds;
    double base = ev.EvaluateSeeds(seeds);
    using Entry = std::tuple<double, graph::NodeId, uint32_t>;
    auto cmp = [](const Entry& a, const Entry& b) {
      if (std::get<0>(a) != std::get<0>(b)) {
        return std::get<0>(a) < std::get<0>(b);
      }
      return std::get<1>(a) > std::get<1>(b);
    };
    auto gain_of = [&](graph::NodeId w) {
      auto with = seeds;
      with.push_back(w);
      return ev.EvaluateSeeds(with) - base;
    };
    std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> queue(cmp);
    for (graph::NodeId v = 0; v < nodes; ++v) queue.emplace(gain_of(v), v, 0);
    std::vector<bool> chosen(nodes, false);
    while (seeds.size() < budget && !queue.empty()) {
      auto [gain, v, at] = queue.top();
      queue.pop();
      if (chosen[v]) continue;
      if (at == seeds.size()) {
        chosen[v] = true;
        seeds.push_back(v);
        base = ev.EvaluateSeeds(seeds);
      } else {
        queue.emplace(gain_of(v), v, static_cast<uint32_t>(seeds.size()));
      }
    }
    return timer.Seconds();
  };

  Table table({"n", "m", "DM-naive sec", "DM sec", "RW sec", "RS sec",
               "RW walk MB", "RS walk MB"});
  Rng rng(9);
  for (double fraction : fractions) {
    const uint32_t sub_n =
        std::max<uint32_t>(64, static_cast<uint32_t>(
                                   env.num_nodes() * fraction));
    const auto sample = rng.SampleWithoutReplacement(env.num_nodes(), sub_n);
    std::vector<graph::NodeId> keep(sample.begin(), sample.end());
    // Induced subgraph + restricted campaign state; re-normalize weights.
    graph::Graph sub = env.graph().InducedSubgraph(keep).NormalizedIncoming();
    opinion::MultiCampaignState state;
    state.campaigns.resize(env.dataset.state.num_candidates());
    for (uint32_t q = 0; q < state.campaigns.size(); ++q) {
      auto& c = state.campaigns[q];
      const auto& full = env.dataset.state.campaigns[q];
      c.initial_opinions.reserve(sub_n);
      c.stubbornness.reserve(sub_n);
      for (graph::NodeId v : keep) {
        c.initial_opinions.push_back(full.initial_opinions[v]);
        c.stubbornness.push_back(full.stubbornness[v]);
      }
    }
    opinion::FJModel model(sub);
    voting::ScoreEvaluator ev(model, state, env.dataset.default_target,
                              env.horizon, voting::ScoreSpec::Cumulative());
    const auto rw = baselines::SelectWithMethod(baselines::Method::kRW, ev, k,
                                                method_options);
    const auto rs = baselines::SelectWithMethod(baselines::Method::kRS, ev, k,
                                                method_options);
    double dm_seconds = -1.0;
    if (include_dm) {
      dm_seconds = baselines::SelectWithMethod(baselines::Method::kDM, ev, k,
                                               method_options)
                       .seconds;
    }
    double naive_seconds = -1.0;
    if (include_naive) naive_seconds = naive_dm_seconds(ev, k);
    table.Add(sub_n, sub.num_edges(),
              naive_seconds < 0 ? "-" : Table::Num(naive_seconds, 3),
              dm_seconds < 0 ? "-" : Table::Num(dm_seconds, 3),
              Table::Num(rw.seconds, 3), Table::Num(rs.seconds, 3),
              Table::Num(rw.diagnostics.at("walk_memory_mb"), 2),
              Table::Num(rs.diagnostics.at("walk_memory_mb"), 2));
  }
  Emit(env, "Fig. 17: time and memory vs graph size (cumulative, k=" +
                std::to_string(k) + ")",
       table);

  // --- Sketch engine scaling: serial stream vs sharded parallel builder ---
  // Times BuildSketchSet on the full bench graph at several thread counts.
  //   --sketch_bench=0       skip this section
  //   --sketch_theta=<int>   walks per build (default 2^19)
  //   --sketch_threads=a,b   thread counts for the sharded builder
  //   --json_out=<path>      also dump the rows as JSON (BENCH_sketch.json)
  if (options.GetBool("sketch_bench", true)) {
    const auto theta =
        static_cast<uint64_t>(options.GetInt("sketch_theta", 1 << 19));
    const auto thread_counts =
        options.GetIntList("sketch_threads", {1, 2, 4, 8});
    voting::ScoreEvaluator ev =
        env.MakeEvaluator(voting::ScoreSpec::Cumulative());

    Table sketch_table({"engine", "threads", "theta", "sec", "walks/sec"});
    std::ostringstream json_rows;
    auto record = [&](const std::string& engine, uint32_t threads,
                      double sec) {
      const double rate = static_cast<double>(theta) / sec;
      sketch_table.Add(engine, threads, theta, Table::Num(sec, 3),
                       Table::Num(rate, 0));
      if (json_rows.tellp() > 0) json_rows << ",\n";
      json_rows << "    {\"engine\": \"" << engine
                << "\", \"threads\": " << threads << ", \"seconds\": " << sec
                << ", \"walks_per_sec\": " << rate << "}";
    };

    {
      Rng sketch_rng(7);
      WallTimer timer;
      auto walks = core::BuildSketchSet(ev, theta, &sketch_rng);
      record("serial", 1, timer.Seconds());
    }
    for (const int64_t threads : thread_counts) {
      core::SketchBuildOptions build_options;
      build_options.num_threads = static_cast<uint32_t>(threads);
      WallTimer timer;
      auto walks = core::BuildSketchSet(ev, theta, /*master_seed=*/7,
                                        build_options);
      record("sharded", static_cast<uint32_t>(threads), timer.Seconds());
    }
    Emit(env, "Sketch engine: serial vs sharded walk generation (theta=" +
                  std::to_string(theta) + ")",
         sketch_table);

    // --- Out-of-core tier: a separate, larger instance built through the
    // block-sharded engine (sketch_ooc/), with a sampled bit-identity spot
    // check against the per-walk RNG-stream definition. Defaults to the
    // paper-scale n = 10^6 tw-dist analog; CI runs it smaller via flags.
    //   --ooc_bench=0            skip the tier
    //   --ooc_nodes=<int>        instance size (default 1,000,000)
    //   --ooc_theta=<int>        walks (default 2^20)
    //   --ooc_block_budget_kb=N  per-block resident budget (default 8192,
    //                            i.e. 8 MiB -> 6 blocks at n = 10^6)
    //   --ooc_sample=<int>       walks regenerated for the spot check
    //   --ooc_scratch=<prefix>   block-file scratch location
    std::ostringstream ooc_json;
    if (options.GetBool("ooc_bench", true)) {
      const auto ooc_nodes =
          static_cast<uint32_t>(options.GetInt("ooc_nodes", 1000000));
      const auto ooc_theta =
          static_cast<uint64_t>(options.GetInt("ooc_theta", 1 << 20));
      const uint64_t budget_bytes =
          static_cast<uint64_t>(options.GetInt("ooc_block_budget_kb", 8192))
          << 10;
      const auto sample_walks =
          static_cast<uint64_t>(options.GetInt("ooc_sample", 512));
      const std::string scratch = options.GetString(
          "ooc_scratch", "/tmp/voteopt_bench_ooc");
      const double ooc_scale =
          static_cast<double>(ooc_nodes) /
          datasets::DefaultNumNodes(datasets::DatasetName::kTwitterDistancing);
      datasets::Dataset big = datasets::MakeDataset(
          datasets::DatasetName::kTwitterDistancing, ooc_scale, env.seed,
          env.mu);
      const auto& campaign = big.state.campaigns[big.default_target];
      constexpr uint64_t kOocMasterSeed = 7;

      sketch_ooc::OocBuildStats stats;
      WallTimer timer;
      auto walks = sketch_ooc::BuildSketchSetOocFromGraph(
          big.influence, campaign, env.horizon, ooc_theta, kOocMasterSeed,
          budget_bytes, scratch, {}, &stats);
      const double ooc_seconds = timer.Seconds();
      if (!walks.ok()) {
        std::cerr << "ooc tier failed: " << walks.status().ToString() << "\n";
        return 1;
      }

      // Spot check: regenerate a sample of walks from their per-walk RNG
      // streams (the definition both engines implement) and compare the
      // stored trajectories byte-for-byte.
      graph::AliasSampler alias(big.influence);
      core::WalkEngine engine(big.influence, campaign, alias);
      const auto& frozen = (*walks)->frozen();
      bool answers_match = true;
      Rng sample_rng(13);
      core::WalkBuffer regen;
      for (uint64_t s = 0; s < sample_walks && answers_match; ++s) {
        const uint64_t j = sample_rng.UniformInt(ooc_theta);
        regen.nodes.clear();
        regen.lengths.clear();
        engine.GenerateSeeded(j, 1, env.horizon, kOocMasterSeed, &regen);
        const uint64_t begin = frozen.offsets[j], end = frozen.offsets[j + 1];
        answers_match = regen.lengths[0] == end - begin;
        for (uint64_t i = begin; answers_match && i < end; ++i) {
          answers_match = frozen.nodes[i] == regen.nodes[i - begin];
        }
      }

      Table ooc_table({"n", "m", "theta", "blocks", "sec", "walks/sec",
                       "boundary hops", "answers_match"});
      ooc_table.Add(big.influence.num_nodes(), big.influence.num_edges(),
                    ooc_theta, stats.num_blocks, Table::Num(ooc_seconds, 3),
                    Table::Num(static_cast<double>(ooc_theta) / ooc_seconds,
                               0),
                    stats.boundary_hops, answers_match ? "true" : "false");
      Emit(env,
           "Out-of-core sketch tier (tw-dist analog, block budget " +
               std::to_string(budget_bytes >> 10) + " KiB)",
           ooc_table);
      ooc_json << ",\n  \"ooc\": {\"n\": " << big.influence.num_nodes()
               << ", \"m\": " << big.influence.num_edges()
               << ", \"theta\": " << ooc_theta
               << ", \"blocks\": " << stats.num_blocks
               << ", \"block_budget_kb\": " << (budget_bytes >> 10)
               << ", \"seconds\": " << ooc_seconds
               << ", \"walks_per_sec\": "
               << static_cast<double>(ooc_theta) / ooc_seconds
               << ", \"boundary_hops\": " << stats.boundary_hops
               << ", \"sampled_walks\": " << sample_walks
               << ", \"answers_match\": " << (answers_match ? "true" : "false")
               << "}";
      if (!answers_match) {
        std::cerr << "ooc tier: sampled walks DIVERGED from the per-walk "
                     "RNG-stream definition\n";
        return 1;
      }
    }

    if (options.Has("json_out")) {
      std::ofstream out(options.GetString("json_out", "BENCH_sketch.json"));
      out << "{\n  \"bench\": \"bench_scalability/sketch_engine\",\n"
          << "  \"dataset\": \"" << env.dataset.name
          << "\",\n  \"n\": " << env.num_nodes()
          << ",\n  \"m\": " << env.graph().num_edges()
          << ",\n  \"theta\": " << theta << ",\n  \"horizon\": "
          << env.horizon << ",\n  \"host\": " << HostMetadataJson()
          << ",\n  \"rows\": [\n" << json_rows.str() << "\n  ]"
          << ooc_json.str() << "\n}\n";
    }
  }
  return 0;
}
