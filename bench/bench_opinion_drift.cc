// Paper Fig. 18 (Yelp, appendix B): percentage of nodes whose opinion about
// the target changes by more than a tolerance Delta% between consecutive
// timestamps, as a function of t — the evidence that a finite horizon
// matters. Also reports the seed-set overlap between horizons (the paper:
// optimal seeds at t=5/10/20 overlap only 42%/48%/61% with t=30).
#include "bench_common.h"

#include "core/greedy_dm.h"
#include "opinion/convergence.h"
#include "util/stats.h"

using namespace voteopt;
using namespace voteopt::bench;

int main(int argc, char** argv) {
  Options options(argc, argv);
  BenchEnv env = MakeEnv(options, "yelp");
  const auto tolerances = options.GetDoubleList("tolerances", {0.1, 1, 5, 10});
  const uint32_t max_t = static_cast<uint32_t>(options.GetInt("max_t", 30));

  const auto& campaign =
      env.dataset.state.campaigns[env.dataset.default_target];
  const auto trajectory = env.model->Trajectory(campaign, max_t);

  Table drift({"t", "Delta=0.1%", "Delta=1%", "Delta=5%", "Delta=10%"});
  for (uint32_t t = 1; t <= max_t; ++t) {
    std::vector<std::string> row = {std::to_string(t)};
    for (double tol : tolerances) {
      row.push_back(Table::Num(
          100.0 *
              opinion::FractionChanged(trajectory[t - 1], trajectory[t], tol),
          2));
    }
    drift.AddRow(row);
  }
  Emit(env, "Fig. 18: % of nodes changing opinion at step t, by tolerance",
       drift);

  // Appendix B companion: overlap of optimal seed sets across horizons.
  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 25));
  const auto horizons = options.GetIntList("horizons", {5, 10, 20, 30});
  std::vector<std::vector<graph::NodeId>> seed_sets;
  for (int64_t t : horizons) {
    env.horizon = static_cast<uint32_t>(t);
    voting::ScoreEvaluator ev =
        env.MakeEvaluator(voting::ScoreSpec::Cumulative());
    seed_sets.push_back(core::GreedyDMSelect(ev, k).seeds);
  }
  Table overlap({"t", "overlap with t=" + std::to_string(horizons.back())});
  for (size_t i = 0; i < horizons.size(); ++i) {
    overlap.Add(horizons[i],
                Table::Num(OverlapFraction(seed_sets[i], seed_sets.back()),
                           3));
  }
  Emit(env, "App. B: optimal seed-set overlap across horizons (k=" +
                std::to_string(k) + ")",
       overlap);
  return 0;
}
