// Paper § VIII-B, Fig. 4 and Table IV: the ACM general-election case study.
// Selects k seeds for the target candidate ("Konstan" analog) with exact
// greedy and reports, per research domain: population, users voting for
// the target before vs after seeding, and which seeds act in the domain.
//
// Paper headline to reproduce in shape: with 100 seeds the target's voters
// jump from ~22% to ~73%, reversing the election; most switched users are
// near-neutral; DM-domain seeds dominate.
#include "bench_common.h"

#include "core/min_seed.h"
#include "core/rs_greedy.h"
#include "core/sandwich.h"
#include "datasets/case_study.h"

using namespace voteopt;
using namespace voteopt::bench;

int main(int argc, char** argv) {
  Options options(argc, argv);
  datasets::CaseStudyConfig config;
  config.num_users = static_cast<uint32_t>(options.GetInt("n", 3000));
  config.rng_seed = static_cast<uint64_t>(options.GetInt("seed", 7));
  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 100));
  const uint32_t horizon = static_cast<uint32_t>(options.GetInt("t", 20));
  const bool csv = options.GetBool("csv", false);

  const datasets::CaseStudyData data = datasets::MakeCaseStudy(config);
  opinion::FJModel model(data.dataset.influence);
  voting::ScoreEvaluator ev(model, data.dataset.state,
                            data.dataset.default_target, horizon,
                            voting::ScoreSpec::Plurality());

  // Feasible solution via the paper's recommended RS method (exact greedy
  // would need hours at case-study scale — exactly the paper's motivation
  // for sketches); sandwich still tries S_U and S_L.
  core::SandwichOptions sandwich;
  sandwich.feasible = [&](const voting::ScoreEvaluator& e, uint32_t budget) {
    core::RSOptions rs;
    rs.theta_override = static_cast<uint64_t>(options.GetInt("theta", 1 << 15));
    return core::RSGreedySelect(e, budget, rs);
  };
  const auto result = core::SandwichSelect(ev, k, sandwich);
  const auto report = datasets::AnalyzeCaseStudy(data, result.seeds, horizon);

  Table table({"Domain", "Total users", "Voting w/o seeds",
               "Voting w/ seeds", "#Seeds (primary domain)"});
  uint64_t users = 0, before = 0, after = 0;
  for (const auto& row : report) {
    table.Add(row.domain, row.total_users,
              std::to_string(row.voting_for_target_before) + " (" +
                  Table::Num(100.0 * row.voting_for_target_before /
                                 std::max(1u, row.total_users),
                             1) +
                  "%)",
              std::to_string(row.voting_for_target_after) + " (" +
                  Table::Num(100.0 * row.voting_for_target_after /
                                 std::max(1u, row.total_users),
                             1) +
                  "%)",
              row.seeds_in_domain.size());
    users += row.total_users;
    before += row.voting_for_target_before;
    after += row.voting_for_target_after;
  }
  if (csv) {
    table.PrintCsv(std::cout);
    return 0;
  }
  std::cout << "\n== Fig. 4 / Table IV: ACM election case study (n="
            << config.num_users << ", k=" << k << ", t=" << horizon
            << ") ==\n\n";
  table.Print(std::cout);

  // Overall electorate swing (the paper reports 21.8% -> 72.7%).
  const auto& rival_row = ev.HorizonOpinions(1 - data.dataset.default_target);
  const auto before_row = ev.TargetHorizonOpinions({});
  const auto after_row = ev.TargetHorizonOpinions(result.seeds);
  uint32_t votes_before = 0, votes_after = 0;
  for (uint32_t v = 0; v < config.num_users; ++v) {
    votes_before += before_row[v] > rival_row[v];
    votes_after += after_row[v] > rival_row[v];
  }
  std::cout << "\nTotal voting for target: " << votes_before << " ("
            << Table::Num(100.0 * votes_before / config.num_users, 1)
            << "%) without seeds -> " << votes_after << " ("
            << Table::Num(100.0 * votes_after / config.num_users, 1)
            << "%) with " << k
            << " seeds   (paper: 21.8% -> 72.7% with 100 seeds)\n"
            << "Election reversed: "
            << (votes_after * 2 > config.num_users ? "yes" : "no") << "\n";
  return 0;
}
