// Paper Fig. 16 (Twitter Social Distancing): plurality score and seed-
// finding time of RW vs the per-user confidence rho (Thms. 10-12 control
// lambda_v).
//
// Shapes to reproduce: the score climbs sharply for small rho and is flat
// from ~0.9 on (the paper's default); time grows with rho (more walks).
#include "bench_common.h"

#include "core/rw_greedy.h"

using namespace voteopt;
using namespace voteopt::bench;

int main(int argc, char** argv) {
  Options options(argc, argv);
  BenchEnv env = MakeEnv(options, "tw-dist", /*default_scale=*/0.12);
  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 25));
  voting::ScoreEvaluator ev = env.MakeEvaluator(voting::ScoreSpec::Plurality());
  const auto rho_values =
      options.GetDoubleList("rhos", {0.75, 0.8, 0.85, 0.9, 0.95});

  Table table({"rho", "mean lambda", "walks", "score", "seconds"});
  for (double rho : rho_values) {
    core::RWOptions rw;
    rw.rho = rho;
    rw.lambda_cap = static_cast<uint64_t>(options.GetInt("lambda_cap", 512));
    const auto result = core::RWGreedySelect(ev, k, rw);
    table.Add(Table::Num(rho, 2),
              Table::Num(result.diagnostics.at("lambda_mean"), 1),
              static_cast<int64_t>(result.diagnostics.at("walks")),
              Table::Num(result.score, 2), Table::Num(result.seconds, 4));
  }
  Emit(env, "Fig. 16: plurality score and time vs rho (RW, k=" +
                std::to_string(k) + ")",
       table);
  return 0;
}
