// Paper Figs. 9 and 10 (Yelp): relations among the plurality variants.
//
// Fig. 9: overlap of the positional-p-approval seed set with the plurality
// and p-approval seed sets as omega[p] sweeps [0, 1] (p = 2 and 3). At
// omega[p] = 0 the positional variant equals (p-1)-approval; at
// omega[p] = 1 it equals p-approval. Paper: plurality vs 2-approval seed
// sets overlap ~80%.
//
// Fig. 10: number of users ranking the target at positions 1..p at the
// horizon, for the selected seed sets.
#include "bench_common.h"

#include "core/sandwich.h"
#include "util/stats.h"

using namespace voteopt;
using namespace voteopt::bench;

namespace {

std::vector<graph::NodeId> SelectFor(const bench::BenchEnv& env,
                                     const voting::ScoreSpec& spec,
                                     uint32_t k) {
  voting::ScoreEvaluator ev = env.MakeEvaluator(spec);
  return core::SandwichSelect(ev, k).seeds;
}

}  // namespace

int main(int argc, char** argv) {
  Options options(argc, argv);
  BenchEnv env = MakeEnv(options, "yelp", /*default_scale=*/0.08);
  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 40));
  const auto omega_values =
      options.GetDoubleList("omega", {0.0, 0.25, 0.5, 0.75, 1.0});

  const auto plurality = SelectFor(env, voting::ScoreSpec::Plurality(), k);

  Table overlaps({"p", "omega[p]", "overlap vs plurality",
                  "overlap vs p-approval", "overlap vs (p-1)-approval"});
  for (uint32_t p : {2u, 3u}) {
    const auto p_approval = SelectFor(env, voting::ScoreSpec::PApproval(p), k);
    const auto pm1_approval =
        p == 2 ? plurality
               : SelectFor(env, voting::ScoreSpec::PApproval(p - 1), k);
    for (double omega_p : omega_values) {
      std::vector<double> omega(p, 1.0);
      omega.back() = omega_p;
      const auto positional = SelectFor(
          env, voting::ScoreSpec::PositionalPApproval(omega), k);
      overlaps.Add(p, Table::Num(omega_p, 2),
                   Table::Num(OverlapFraction(positional, plurality), 3),
                   Table::Num(OverlapFraction(positional, p_approval), 3),
                   Table::Num(OverlapFraction(positional, pm1_approval), 3));
    }
  }
  Emit(env, "Fig. 9: seed-set overlap among plurality variants (k=" +
                std::to_string(k) + ")",
       overlaps);

  // Fig. 10: rank-position distribution of the target at the horizon.
  const uint32_t r = env.dataset.state.num_candidates();
  Table positions({"seed objective", "rank 1", "rank 2", "rank 3", "rank>3"});
  auto count_positions = [&](const std::string& label,
                             const std::vector<graph::NodeId>& seeds) {
    voting::ScoreEvaluator ev =
        env.MakeEvaluator(voting::ScoreSpec::PApproval(std::min(3u, r)));
    const auto row = ev.TargetHorizonOpinions(seeds);
    std::array<uint64_t, 4> counts{};
    for (uint32_t v = 0; v < env.num_nodes(); ++v) {
      const uint32_t beta = ev.UserRank(v, row[v]);
      counts[std::min<uint32_t>(beta, 4) - 1]++;
    }
    positions.Add(label, counts[0], counts[1], counts[2], counts[3]);
  };
  count_positions("none (no seeds)", {});
  count_positions("plurality", plurality);
  count_positions("2-approval", SelectFor(env, voting::ScoreSpec::PApproval(2), k));
  if (r >= 3) {
    count_positions("3-approval",
                    SelectFor(env, voting::ScoreSpec::PApproval(3), k));
  }
  Emit(env, "Fig. 10: users ranking the target at each position", positions);
  return 0;
}
