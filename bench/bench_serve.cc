// Serve-layer benchmark: throughput and latency of the concurrent
// api::Engine (the dispatch path behind CampaignService and the wire
// protocol) at 1..N worker threads over one hosted dataset.
//
// An offline pass builds + persists the sketch once; each measured
// configuration then opens a fresh engine over the persisted store (mmap)
// and answers the same deterministic mixed batch — topk selections
// interleaved with exact evaluations — through ExecuteBatch, which fans
// the queries out onto the worker pool. Recorded per thread count:
// wall-clock batch time, queries/sec, and the per-query handling latency
// distribution. The answers at every thread count are compared against the
// 1-thread run (modulo the millis field): the "answers match" column is
// the thread-count-invariance acceptance check of the serving layer.
//
// Two further sections drive the SAME mixed batch through the epoll TCP
// front end (net/server.h) over real loopback sockets:
//   * closed-loop — N client connections, each request waiting for its
//     answer: end-to-end round-trip latency through framing, admission,
//     coalescing, and write-back;
//   * open-loop — requests paced onto the socket at fixed target QPS
//     regardless of responses (the arrival model of real front-end load);
//     latency is measured from the SCHEDULED send instant, so queueing
//     delay counts, and `overloaded` sheds are reported rather than
//     hidden. Every socket answer is checked byte-identical (modulo
//     millis) against the in-process baseline.
//
//   --theta=<N>          sketch walks (default 2^17)
//   --queries=<N>        batch size (default 64)
//   --k=<N>              topk budget inside the mix (default 8)
//   --serve_threads=<L>  worker counts, e.g. 1,2,4 (default 1,2,4)
//   --repeats=<N>        best-of-N per configuration (default 3)
//   --net_clients=<N>    closed-loop client connections (default 4)
//   --closed_rounds=<N>  closed-loop passes over the batch per client
//                        (default 4)
//   --qps_levels=<L>     open-loop target QPS levels (default 200,800,2000)
//   --open_secs=<F>      open-loop duration per level, seconds (default 1.5)
//   --json_out=<p>       dump BENCH_serve.json
#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "datasets/io.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/protocol.h"
#include "util/timer.h"

using namespace voteopt;
using namespace voteopt::bench;

namespace {

/// Deterministic mixed batch: every 4th request a top-k selection (the
/// truncation-heavy path), the rest exact evaluations under per-request
/// seed sets and opinion overrides (the cheap read-mostly path).
std::vector<api::Request> MakeBatch(size_t queries, uint32_t k,
                                      uint32_t num_nodes) {
  std::vector<api::Request> batch;
  batch.reserve(queries);
  for (size_t i = 0; i < queries; ++i) {
    api::Request request;
    request.id = "q" + std::to_string(i);
    if (i % 4 == 0) {
      request.op = api::Request::Op::kTopK;
      request.k = k;
      request.rule = (i % 8 == 0) ? "cumulative" : "plurality";
    } else {
      request.op = api::Request::Op::kEvaluate;
      request.seeds = {static_cast<graph::NodeId>(i % num_nodes),
                       static_cast<graph::NodeId>((i * 7 + 1) % num_nodes)};
      request.overrides = {
          {static_cast<graph::NodeId>((i * 3) % num_nodes),
           static_cast<double>(i % 10) / 10.0}};
    }
    batch.push_back(std::move(request));
  }
  return batch;
}

double Percentile(std::vector<double>* latencies, double q) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const size_t at = std::min(latencies->size() - 1,
                             static_cast<size_t>(
                                 static_cast<double>(latencies->size()) * q));
  return (*latencies)[at];
}

}  // namespace

int main(int argc, char** argv) {
  Options options(argc, argv);
  BenchEnv env = MakeEnv(options, "tw-mask", /*default_scale=*/0.1);
  const auto theta = static_cast<uint64_t>(options.GetInt("theta", 1 << 17));
  const auto queries = static_cast<size_t>(
      std::max<int64_t>(1, options.GetInt("queries", 64)));
  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 8));
  const int repeats =
      std::max<int>(1, static_cast<int>(options.GetInt("repeats", 3)));
  std::vector<int64_t> thread_counts =
      options.GetIntList("serve_threads", {1, 2, 4});
  const std::string prefix =
      options.GetString("store_path", "./bench_serve_bundle");

  if (Status st = datasets::SaveDatasetBundle(env.dataset, prefix);
      !st.ok()) {
    std::cerr << "bundle save failed: " << st.ToString() << "\n";
    return 1;
  }

  api::EngineOptions base;
  base.load.bundle_prefix = prefix;
  base.load.build_theta = theta;
  base.load.build_horizon = env.horizon;
  base.load.save_built_sketch = true;
  base.load.build_threads = 0;

  // Offline pass: build + persist the artifact once, outside the timings.
  WallTimer timer;
  {
    auto built = api::Engine::Open(base);
    if (!built.ok()) {
      std::cerr << "build failed: " << built.status().ToString() << "\n";
      return 1;
    }
  }
  const double build_sec = timer.Seconds();

  const std::vector<api::Request> batch =
      MakeBatch(queries, k, env.num_nodes());

  struct Row {
    uint32_t threads = 0;
    double total_sec = 0.0;
    double qps = 0.0;
    double mean_millis = 0.0;
    double p95_millis = 0.0;
    bool answers_match = true;
  };
  std::vector<Row> rows;
  std::vector<std::string> baseline;  // 1st configuration's stable answers
  bool all_match = true;

  for (const int64_t threads : thread_counts) {
    api::EngineOptions config = base;
    config.num_worker_threads = static_cast<uint32_t>(threads);
    Row row;
    row.threads = static_cast<uint32_t>(threads);
    row.total_sec = std::numeric_limits<double>::infinity();
    for (int trial = 0; trial < repeats; ++trial) {
      auto engine = api::Engine::Open(config);
      if (!engine.ok()) {
        std::cerr << "open failed: " << engine.status().ToString() << "\n";
        return 1;
      }
      timer.Restart();
      const std::vector<api::Response> responses =
          (*engine)->ExecuteBatch(batch);
      const double total_sec = timer.Seconds();

      std::vector<double> latencies;
      latencies.reserve(responses.size());
      double sum = 0.0;
      bool match = true;
      std::vector<std::string> stable;
      stable.reserve(responses.size());
      for (const api::Response& response : responses) {
        if (!response.ok) {
          std::cerr << "query failed: " << response.error << "\n";
          return 1;
        }
        latencies.push_back(response.millis);
        sum += response.millis;
        stable.push_back(response.ToStableJson());
      }
      if (baseline.empty()) {
        baseline = stable;
      } else {
        match = stable == baseline;
      }
      if (total_sec < row.total_sec) {
        row.total_sec = total_sec;
        row.qps = static_cast<double>(responses.size()) / total_sec;
        row.mean_millis = sum / static_cast<double>(responses.size());
        std::sort(latencies.begin(), latencies.end());
        row.p95_millis = latencies[latencies.size() * 95 / 100];
      }
      row.answers_match = row.answers_match && match;
    }
    all_match = all_match && row.answers_match;
    rows.push_back(row);
  }

  // ---- observability overhead: the identical batch with the metrics
  // registry + counters live (the default) vs enable_metrics=false. The
  // instrumentation is a handful of relaxed atomics per query, so the
  // wall-clock delta must stay within noise (<= 2% is the recorded gate);
  // answers must stay bit-identical either way (additive side channel).
  double metrics_on_sec = std::numeric_limits<double>::infinity();
  double metrics_off_sec = std::numeric_limits<double>::infinity();
  bool metrics_match = true;
  {
    api::EngineOptions config = base;
    config.num_worker_threads = static_cast<uint32_t>(thread_counts.back());
    for (const bool enabled : {false, true}) {
      config.enable_metrics = enabled;
      double& best_sec = enabled ? metrics_on_sec : metrics_off_sec;
      for (int trial = 0; trial < repeats; ++trial) {
        auto engine = api::Engine::Open(config);
        if (!engine.ok()) {
          std::cerr << "open failed: " << engine.status().ToString() << "\n";
          return 1;
        }
        std::vector<api::Response> responses;
        best_sec = std::min(best_sec, TimeSeconds([&] {
                              responses = (*engine)->ExecuteBatch(batch);
                            }));
        for (size_t i = 0; i < responses.size(); ++i) {
          metrics_match =
              metrics_match && responses[i].ToStableJson() == baseline[i];
        }
      }
    }
  }
  const double metrics_overhead_pct =
      (metrics_on_sec - metrics_off_sec) / metrics_off_sec * 100.0;
  all_match = all_match && metrics_match;

  // ---- TCP front end: the identical batch through net::Server over real
  // loopback sockets. One engine (max worker count) hosts the dataset for
  // both socket sections; the batcher's executor pool matches it.
  const int net_clients =
      std::max<int>(1, static_cast<int>(options.GetInt("net_clients", 4)));
  const int closed_rounds =
      std::max<int>(1, static_cast<int>(options.GetInt("closed_rounds", 4)));
  const std::vector<int64_t> qps_levels =
      options.GetIntList("qps_levels", {200, 800, 2000});
  const double open_secs = std::max(0.1, options.GetDouble("open_secs", 1.5));

  struct NetClosedRow {
    size_t requests = 0;
    double total_sec = 0.0;
    double qps = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    bool answers_match = true;
  } net_closed;

  struct NetOpenRow {
    int64_t target_qps = 0;
    size_t sent = 0;
    size_t shed = 0;
    double achieved_qps = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    bool answers_match = true;
  };
  std::vector<NetOpenRow> net_open_rows;

  {
    api::EngineOptions config = base;
    config.num_worker_threads = static_cast<uint32_t>(thread_counts.back());
    auto engine = api::Engine::Open(config);
    if (!engine.ok()) {
      std::cerr << "open failed: " << engine.status().ToString() << "\n";
      return 1;
    }
    net::ServerOptions server_options;
    server_options.batch.num_executors =
        static_cast<uint32_t>(thread_counts.back());
    server_options.batch.metrics = &(*engine)->metrics();
    net::Server server((*engine).get(), server_options);
    if (Status st = server.Start(); !st.ok()) {
      std::cerr << "server start failed: " << st.ToString() << "\n";
      return 1;
    }
    const uint16_t port = server.port();

    std::vector<std::string> wire_lines;  // request JSON per batch slot
    wire_lines.reserve(batch.size());
    for (const api::Request& request : batch) {
      wire_lines.push_back(serve::RequestToJson(request));
    }

    // Closed loop: every client connection walks the batch closed_rounds
    // times with exactly one request outstanding — RTT is the end-to-end
    // path through framing, admission, coalescing, and write-back.
    {
      std::vector<std::vector<double>> rtts(
          static_cast<size_t>(net_clients));
      std::vector<char> client_ok(static_cast<size_t>(net_clients), 1);
      std::vector<std::thread> client_threads;
      client_threads.reserve(static_cast<size_t>(net_clients));
      timer.Restart();
      for (int c = 0; c < net_clients; ++c) {
        client_threads.emplace_back([&, c] {
          net::BlockingClient client;
          if (!client.Connect("127.0.0.1", port).ok()) {
            client_ok[c] = 0;
            return;
          }
          for (int round = 0; round < closed_rounds; ++round) {
            for (size_t i = 0; i < wire_lines.size(); ++i) {
              const auto sent_at = std::chrono::steady_clock::now();
              std::string line;
              if (!client.SendLine(wire_lines[i]).ok() ||
                  !client.ReadLine(&line).ok()) {
                client_ok[c] = 0;
                return;
              }
              rtts[c].push_back(std::chrono::duration<double, std::milli>(
                                    std::chrono::steady_clock::now() - sent_at)
                                    .count());
              auto response = serve::ParseResponse(line);
              if (!response.ok() ||
                  response->ToStableJson() != baseline[i]) {
                client_ok[c] = 0;
              }
            }
          }
        });
      }
      for (std::thread& t : client_threads) t.join();
      net_closed.total_sec = timer.Seconds();
      std::vector<double> all_rtts;
      for (int c = 0; c < net_clients; ++c) {
        net_closed.answers_match = net_closed.answers_match && client_ok[c];
        all_rtts.insert(all_rtts.end(), rtts[c].begin(), rtts[c].end());
      }
      const size_t expected_total = static_cast<size_t>(net_clients) *
                                    static_cast<size_t>(closed_rounds) *
                                    wire_lines.size();
      net_closed.answers_match =
          net_closed.answers_match && all_rtts.size() == expected_total;
      net_closed.requests = all_rtts.size();
      net_closed.qps =
          static_cast<double>(all_rtts.size()) / net_closed.total_sec;
      net_closed.p50_ms = Percentile(&all_rtts, 0.50);
      net_closed.p95_ms = Percentile(&all_rtts, 0.95);
      net_closed.p99_ms = Percentile(&all_rtts, 0.99);
      all_match = all_match && net_closed.answers_match;
    }

    // Open loop: requests paced onto ONE connection at the target rate
    // whether or not answers have come back (the arrival model of real
    // front-end load). Latency is measured from the SCHEDULED send
    // instant, so server-side queueing delay counts against the tail;
    // `overloaded` sheds are counted, and every non-shed answer is
    // checked byte-identical against the in-process baseline.
    for (const int64_t target_qps : qps_levels) {
      NetOpenRow row;
      row.target_qps = target_qps;
      const size_t total = std::max<size_t>(
          1,
          static_cast<size_t>(static_cast<double>(target_qps) * open_secs));
      net::BlockingClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        row.answers_match = false;
        net_open_rows.push_back(row);
        continue;
      }
      std::vector<double> recv_ms(total, -1.0);
      size_t shed = 0;
      bool match = true;
      const auto start = std::chrono::steady_clock::now();
      // One connection delivers answers in request order, so the i-th
      // response line IS the answer (or shed notice) for the i-th send.
      std::thread reader([&] {
        std::string line;
        for (size_t i = 0; i < total; ++i) {
          if (!client.ReadLine(&line, /*timeout_ms=*/30000).ok()) {
            match = false;
            return;
          }
          recv_ms[i] = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
          auto response = serve::ParseResponse(line);
          if (!response.ok()) {
            match = false;
            continue;
          }
          if (!response->ok &&
              response->error.find("Overloaded") != std::string::npos) {
            ++shed;
            continue;
          }
          if (response->ToStableJson() != baseline[i % baseline.size()]) {
            match = false;
          }
        }
      });
      for (size_t i = 0; i < total; ++i) {
        std::this_thread::sleep_until(
            start + std::chrono::microseconds(static_cast<int64_t>(
                        static_cast<double>(i) * 1e6 /
                        static_cast<double>(target_qps))));
        if (!client.SendLine(wire_lines[i % wire_lines.size()]).ok()) {
          match = false;
          break;
        }
      }
      reader.join();
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      std::vector<double> latencies;
      latencies.reserve(total);
      for (size_t i = 0; i < total; ++i) {
        if (recv_ms[i] < 0.0) continue;  // never answered (failure path)
        const double scheduled_ms = static_cast<double>(i) * 1000.0 /
                                    static_cast<double>(target_qps);
        latencies.push_back(recv_ms[i] - scheduled_ms);
      }
      row.sent = total;
      row.shed = shed;
      row.achieved_qps = static_cast<double>(latencies.size()) / elapsed;
      row.p50_ms = Percentile(&latencies, 0.50);
      row.p95_ms = Percentile(&latencies, 0.95);
      row.p99_ms = Percentile(&latencies, 0.99);
      row.answers_match = match && latencies.size() == total;
      all_match = all_match && row.answers_match;
      net_open_rows.push_back(row);
    }
    server.Stop();
  }

  for (const char* suffix : {".influence.edges", ".counts.edges",
                             ".campaigns.tsv", ".meta", ".sketch"}) {
    std::remove((prefix + suffix).c_str());
  }

  Table table({"threads", "total sec", "qps", "speedup", "mean ms",
               "p95 ms", "answers match"});
  for (const Row& row : rows) {
    table.Add(std::to_string(row.threads), Table::Num(row.total_sec, 4),
              Table::Num(row.qps, 1),
              Table::Num(rows.front().total_sec / row.total_sec, 2),
              Table::Num(row.mean_millis, 3), Table::Num(row.p95_millis, 3),
              row.answers_match ? "yes" : "NO");
  }
  Emit(env,
       "Serve: concurrent CampaignService throughput/latency (theta=" +
           std::to_string(theta) + ", " + std::to_string(queries) +
           " queries, k=" + std::to_string(k) + ", offline build " +
           Table::Num(build_sec, 2) + " s)",
       table);

  Table overhead_table({"metrics", "total sec", "overhead %", "answers match"});
  overhead_table.Add("off", Table::Num(metrics_off_sec, 4), "-",
                     metrics_match ? "yes" : "NO");
  overhead_table.Add("on", Table::Num(metrics_on_sec, 4),
                     Table::Num(metrics_overhead_pct, 2),
                     metrics_match ? "yes" : "NO");
  Emit(env, "Serve: observability overhead (registry + counters on vs off)",
       overhead_table);

  Table closed_table({"clients", "rounds", "requests", "total sec", "qps",
                      "p50 ms", "p95 ms", "p99 ms", "answers match"});
  closed_table.Add(std::to_string(net_clients), std::to_string(closed_rounds),
                   std::to_string(net_closed.requests),
                   Table::Num(net_closed.total_sec, 4),
                   Table::Num(net_closed.qps, 1),
                   Table::Num(net_closed.p50_ms, 3),
                   Table::Num(net_closed.p95_ms, 3),
                   Table::Num(net_closed.p99_ms, 3),
                   net_closed.answers_match ? "yes" : "NO");
  Emit(env,
       "Serve: TCP closed-loop round trips (epoll front end, loopback, " +
           std::to_string(net_clients) + " connections)",
       closed_table);

  Table open_table({"target qps", "sent", "shed", "achieved qps", "p50 ms",
                    "p95 ms", "p99 ms", "answers match"});
  for (const NetOpenRow& row : net_open_rows) {
    open_table.Add(std::to_string(row.target_qps), std::to_string(row.sent),
                   std::to_string(row.shed),
                   Table::Num(row.achieved_qps, 1),
                   Table::Num(row.p50_ms, 3), Table::Num(row.p95_ms, 3),
                   Table::Num(row.p99_ms, 3),
                   row.answers_match ? "yes" : "NO");
  }
  Emit(env,
       "Serve: TCP open-loop latency at target QPS (scheduled-send "
       "latency; queueing delay counts)",
       open_table);

  if (options.Has("json_out")) {
    std::ofstream out(options.GetString("json_out", "BENCH_serve.json"));
    out.precision(6);
    out << "{\n  \"bench\": \"bench_serve\",\n"
        << "  \"dataset\": \"" << env.dataset.name << "\",\n"
        << "  \"n\": " << env.num_nodes()
        << ",\n  \"m\": " << env.graph().num_edges()
        << ",\n  \"theta\": " << theta << ",\n  \"queries\": " << queries
        << ",\n  \"k\": " << k << ",\n  \"horizon\": " << env.horizon
        << ",\n  \"build_sec\": " << build_sec
        << ",\n  \"host\": " << HostMetadataJson() << ",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      out << "    {\"threads\": " << row.threads << ", \"total_sec\": "
          << row.total_sec << ", \"qps\": " << row.qps
          << ", \"mean_query_millis\": " << row.mean_millis
          << ", \"p95_query_millis\": " << row.p95_millis
          << ", \"answers_match\": " << (row.answers_match ? "true" : "false")
          << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"metrics\": {\"enabled_sec\": " << metrics_on_sec
        << ", \"disabled_sec\": " << metrics_off_sec
        << ", \"overhead_pct\": " << metrics_overhead_pct
        << ", \"answers_match\": " << (metrics_match ? "true" : "false")
        << "},\n  \"net_closed\": {\"clients\": " << net_clients
        << ", \"rounds\": " << closed_rounds
        << ", \"requests\": " << net_closed.requests
        << ", \"total_sec\": " << net_closed.total_sec
        << ", \"qps\": " << net_closed.qps
        << ", \"p50_ms\": " << net_closed.p50_ms
        << ", \"p95_ms\": " << net_closed.p95_ms
        << ", \"p99_ms\": " << net_closed.p99_ms << ", \"answers_match\": "
        << (net_closed.answers_match ? "true" : "false")
        << "},\n  \"net_open\": [\n";
    for (size_t i = 0; i < net_open_rows.size(); ++i) {
      const NetOpenRow& row = net_open_rows[i];
      out << "    {\"target_qps\": " << row.target_qps
          << ", \"sent\": " << row.sent << ", \"shed\": " << row.shed
          << ", \"achieved_qps\": " << row.achieved_qps
          << ", \"p50_ms\": " << row.p50_ms << ", \"p95_ms\": " << row.p95_ms
          << ", \"p99_ms\": " << row.p99_ms << ", \"answers_match\": "
          << (row.answers_match ? "true" : "false") << "}"
          << (i + 1 < net_open_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"answers_match_all\": " << (all_match ? "true" : "false")
        << "\n}\n";
  }
  if (!all_match) {
    std::cerr << "ERROR: answers diverged across worker thread counts\n";
    return 1;
  }
  return 0;
}
