// Serve-layer benchmark: throughput and latency of the concurrent
// api::Engine (the dispatch path behind CampaignService and the wire
// protocol) at 1..N worker threads over one hosted dataset.
//
// An offline pass builds + persists the sketch once; each measured
// configuration then opens a fresh engine over the persisted store (mmap)
// and answers the same deterministic mixed batch — topk selections
// interleaved with exact evaluations — through ExecuteBatch, which fans
// the queries out onto the worker pool. Recorded per thread count:
// wall-clock batch time, queries/sec, and the per-query handling latency
// distribution. The answers at every thread count are compared against the
// 1-thread run (modulo the millis field): the "answers match" column is
// the thread-count-invariance acceptance check of the serving layer.
//
//   --theta=<N>          sketch walks (default 2^17)
//   --queries=<N>        batch size (default 64)
//   --k=<N>              topk budget inside the mix (default 8)
//   --serve_threads=<L>  worker counts, e.g. 1,2,4 (default 1,2,4)
//   --repeats=<N>        best-of-N per configuration (default 3)
//   --json_out=<p>       dump BENCH_serve.json
#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "api/engine.h"
#include "datasets/io.h"
#include "serve/protocol.h"
#include "util/timer.h"

using namespace voteopt;
using namespace voteopt::bench;

namespace {

/// Deterministic mixed batch: every 4th request a top-k selection (the
/// truncation-heavy path), the rest exact evaluations under per-request
/// seed sets and opinion overrides (the cheap read-mostly path).
std::vector<api::Request> MakeBatch(size_t queries, uint32_t k,
                                      uint32_t num_nodes) {
  std::vector<api::Request> batch;
  batch.reserve(queries);
  for (size_t i = 0; i < queries; ++i) {
    api::Request request;
    request.id = "q" + std::to_string(i);
    if (i % 4 == 0) {
      request.op = api::Request::Op::kTopK;
      request.k = k;
      request.rule = (i % 8 == 0) ? "cumulative" : "plurality";
    } else {
      request.op = api::Request::Op::kEvaluate;
      request.seeds = {static_cast<graph::NodeId>(i % num_nodes),
                       static_cast<graph::NodeId>((i * 7 + 1) % num_nodes)};
      request.overrides = {
          {static_cast<graph::NodeId>((i * 3) % num_nodes),
           static_cast<double>(i % 10) / 10.0}};
    }
    batch.push_back(std::move(request));
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  Options options(argc, argv);
  BenchEnv env = MakeEnv(options, "tw-mask", /*default_scale=*/0.1);
  const auto theta = static_cast<uint64_t>(options.GetInt("theta", 1 << 17));
  const auto queries = static_cast<size_t>(
      std::max<int64_t>(1, options.GetInt("queries", 64)));
  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 8));
  const int repeats =
      std::max<int>(1, static_cast<int>(options.GetInt("repeats", 3)));
  std::vector<int64_t> thread_counts =
      options.GetIntList("serve_threads", {1, 2, 4});
  const std::string prefix =
      options.GetString("store_path", "./bench_serve_bundle");

  if (Status st = datasets::SaveDatasetBundle(env.dataset, prefix);
      !st.ok()) {
    std::cerr << "bundle save failed: " << st.ToString() << "\n";
    return 1;
  }

  api::EngineOptions base;
  base.load.bundle_prefix = prefix;
  base.load.build_theta = theta;
  base.load.build_horizon = env.horizon;
  base.load.save_built_sketch = true;
  base.load.build_threads = 0;

  // Offline pass: build + persist the artifact once, outside the timings.
  WallTimer timer;
  {
    auto built = api::Engine::Open(base);
    if (!built.ok()) {
      std::cerr << "build failed: " << built.status().ToString() << "\n";
      return 1;
    }
  }
  const double build_sec = timer.Seconds();

  const std::vector<api::Request> batch =
      MakeBatch(queries, k, env.num_nodes());

  struct Row {
    uint32_t threads = 0;
    double total_sec = 0.0;
    double qps = 0.0;
    double mean_millis = 0.0;
    double p95_millis = 0.0;
    bool answers_match = true;
  };
  std::vector<Row> rows;
  std::vector<std::string> baseline;  // 1st configuration's stable answers
  bool all_match = true;

  for (const int64_t threads : thread_counts) {
    api::EngineOptions config = base;
    config.num_worker_threads = static_cast<uint32_t>(threads);
    Row row;
    row.threads = static_cast<uint32_t>(threads);
    row.total_sec = std::numeric_limits<double>::infinity();
    for (int trial = 0; trial < repeats; ++trial) {
      auto engine = api::Engine::Open(config);
      if (!engine.ok()) {
        std::cerr << "open failed: " << engine.status().ToString() << "\n";
        return 1;
      }
      timer.Restart();
      const std::vector<api::Response> responses =
          (*engine)->ExecuteBatch(batch);
      const double total_sec = timer.Seconds();

      std::vector<double> latencies;
      latencies.reserve(responses.size());
      double sum = 0.0;
      bool match = true;
      std::vector<std::string> stable;
      stable.reserve(responses.size());
      for (const api::Response& response : responses) {
        if (!response.ok) {
          std::cerr << "query failed: " << response.error << "\n";
          return 1;
        }
        latencies.push_back(response.millis);
        sum += response.millis;
        stable.push_back(response.ToStableJson());
      }
      if (baseline.empty()) {
        baseline = stable;
      } else {
        match = stable == baseline;
      }
      if (total_sec < row.total_sec) {
        row.total_sec = total_sec;
        row.qps = static_cast<double>(responses.size()) / total_sec;
        row.mean_millis = sum / static_cast<double>(responses.size());
        std::sort(latencies.begin(), latencies.end());
        row.p95_millis = latencies[latencies.size() * 95 / 100];
      }
      row.answers_match = row.answers_match && match;
    }
    all_match = all_match && row.answers_match;
    rows.push_back(row);
  }

  // ---- observability overhead: the identical batch with the metrics
  // registry + counters live (the default) vs enable_metrics=false. The
  // instrumentation is a handful of relaxed atomics per query, so the
  // wall-clock delta must stay within noise (<= 2% is the recorded gate);
  // answers must stay bit-identical either way (additive side channel).
  double metrics_on_sec = std::numeric_limits<double>::infinity();
  double metrics_off_sec = std::numeric_limits<double>::infinity();
  bool metrics_match = true;
  {
    api::EngineOptions config = base;
    config.num_worker_threads = static_cast<uint32_t>(thread_counts.back());
    for (const bool enabled : {false, true}) {
      config.enable_metrics = enabled;
      double& best_sec = enabled ? metrics_on_sec : metrics_off_sec;
      for (int trial = 0; trial < repeats; ++trial) {
        auto engine = api::Engine::Open(config);
        if (!engine.ok()) {
          std::cerr << "open failed: " << engine.status().ToString() << "\n";
          return 1;
        }
        std::vector<api::Response> responses;
        best_sec = std::min(best_sec, TimeSeconds([&] {
                              responses = (*engine)->ExecuteBatch(batch);
                            }));
        for (size_t i = 0; i < responses.size(); ++i) {
          metrics_match =
              metrics_match && responses[i].ToStableJson() == baseline[i];
        }
      }
    }
  }
  const double metrics_overhead_pct =
      (metrics_on_sec - metrics_off_sec) / metrics_off_sec * 100.0;
  all_match = all_match && metrics_match;

  for (const char* suffix : {".influence.edges", ".counts.edges",
                             ".campaigns.tsv", ".meta", ".sketch"}) {
    std::remove((prefix + suffix).c_str());
  }

  Table table({"threads", "total sec", "qps", "speedup", "mean ms",
               "p95 ms", "answers match"});
  for (const Row& row : rows) {
    table.Add(std::to_string(row.threads), Table::Num(row.total_sec, 4),
              Table::Num(row.qps, 1),
              Table::Num(rows.front().total_sec / row.total_sec, 2),
              Table::Num(row.mean_millis, 3), Table::Num(row.p95_millis, 3),
              row.answers_match ? "yes" : "NO");
  }
  Emit(env,
       "Serve: concurrent CampaignService throughput/latency (theta=" +
           std::to_string(theta) + ", " + std::to_string(queries) +
           " queries, k=" + std::to_string(k) + ", offline build " +
           Table::Num(build_sec, 2) + " s)",
       table);

  Table overhead_table({"metrics", "total sec", "overhead %", "answers match"});
  overhead_table.Add("off", Table::Num(metrics_off_sec, 4), "-",
                     metrics_match ? "yes" : "NO");
  overhead_table.Add("on", Table::Num(metrics_on_sec, 4),
                     Table::Num(metrics_overhead_pct, 2),
                     metrics_match ? "yes" : "NO");
  Emit(env, "Serve: observability overhead (registry + counters on vs off)",
       overhead_table);

  if (options.Has("json_out")) {
    std::ofstream out(options.GetString("json_out", "BENCH_serve.json"));
    out.precision(6);
    out << "{\n  \"bench\": \"bench_serve\",\n"
        << "  \"dataset\": \"" << env.dataset.name << "\",\n"
        << "  \"n\": " << env.num_nodes()
        << ",\n  \"m\": " << env.graph().num_edges()
        << ",\n  \"theta\": " << theta << ",\n  \"queries\": " << queries
        << ",\n  \"k\": " << k << ",\n  \"horizon\": " << env.horizon
        << ",\n  \"build_sec\": " << build_sec
        << ",\n  \"host\": " << HostMetadataJson() << ",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      out << "    {\"threads\": " << row.threads << ", \"total_sec\": "
          << row.total_sec << ", \"qps\": " << row.qps
          << ", \"mean_query_millis\": " << row.mean_millis
          << ", \"p95_query_millis\": " << row.p95_millis
          << ", \"answers_match\": " << (row.answers_match ? "true" : "false")
          << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"metrics\": {\"enabled_sec\": " << metrics_on_sec
        << ", \"disabled_sec\": " << metrics_off_sec
        << ", \"overhead_pct\": " << metrics_overhead_pct
        << ", \"answers_match\": " << (metrics_match ? "true" : "false")
        << "},\n  \"answers_match_all\": " << (all_match ? "true" : "false")
        << "\n}\n";
  }
  if (!all_match) {
    std::cerr << "ERROR: answers diverged across worker thread counts\n";
    return 1;
  }
  return 0;
}
