// Paper Fig. 11 (Twitter Mask): Expected Influence Spread under the IC and
// LT models, comparing the seeds RW selects for the three voting scores
// against the seeds IMM selects natively for each cascade model.
//
// Shape to reproduce: RW's voting-based seeds achieve a comparable EIS —
// the cumulative-score seeds reach >= ~80% of IMM's spread under both
// models.
#include "bench_common.h"

#include "baselines/cascade_models.h"
#include "baselines/imm.h"
#include "core/rw_greedy.h"

using namespace voteopt;
using namespace voteopt::bench;

int main(int argc, char** argv) {
  Options options(argc, argv);
  BenchEnv env = MakeEnv(options, "tw-mask");
  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 50));
  const uint32_t runs = static_cast<uint32_t>(options.GetInt("mc_runs", 500));
  const baselines::MethodOptions method_options =
      DefaultMethodOptions(options);

  // Seeds from RW under each voting score.
  std::vector<std::pair<std::string, std::vector<graph::NodeId>>> seed_sets;
  for (const auto& [label, spec] :
       std::vector<std::pair<std::string, voting::ScoreSpec>>{
           {"RW-cumulative", voting::ScoreSpec::Cumulative()},
           {"RW-plurality", voting::ScoreSpec::Plurality()},
           {"RW-copeland", voting::ScoreSpec::Copeland()}}) {
    voting::ScoreEvaluator ev = env.MakeEvaluator(spec);
    seed_sets.emplace_back(
        label, core::RWGreedySelect(ev, k, method_options.rw).seeds);
  }
  // Native IMM seeds per cascade model.
  Rng imm_rng(method_options.rng_seed);
  const auto imm_ic =
      baselines::IMMSelect(env.graph(), k,
                           baselines::CascadeModel::kIndependentCascade,
                           {.epsilon = method_options.imm_epsilon}, &imm_rng);
  const auto imm_lt =
      baselines::IMMSelect(env.graph(), k,
                           baselines::CascadeModel::kLinearThreshold,
                           {.epsilon = method_options.imm_epsilon}, &imm_rng);

  Table table({"seed selector", "EIS under IC", "EIS under LT",
               "% of IMM (IC)", "% of IMM (LT)"});
  Rng mc_rng(7);
  auto eis = [&](const std::vector<graph::NodeId>& seeds,
                 baselines::CascadeModel model) {
    return baselines::EstimateSpread(env.graph(), seeds, model, runs,
                                     &mc_rng);
  };
  const double imm_ic_eis =
      eis(imm_ic.seeds, baselines::CascadeModel::kIndependentCascade);
  const double imm_lt_eis =
      eis(imm_lt.seeds, baselines::CascadeModel::kLinearThreshold);
  table.Add("IMM (native)", Table::Num(imm_ic_eis, 1),
            Table::Num(imm_lt_eis, 1), "100", "100");
  for (const auto& [label, seeds] : seed_sets) {
    const double ic_spread =
        eis(seeds, baselines::CascadeModel::kIndependentCascade);
    const double lt_spread =
        eis(seeds, baselines::CascadeModel::kLinearThreshold);
    table.Add(label, Table::Num(ic_spread, 1), Table::Num(lt_spread, 1),
              Table::Num(100.0 * ic_spread / imm_ic_eis, 1),
              Table::Num(100.0 * lt_spread / imm_lt_eis, 1));
  }
  Emit(env, "Fig. 11: expected influence spread, voting seeds vs IMM (k=" +
                std::to_string(k) + ")",
       table);
  return 0;
}
