// voteopt_convert: SNAP/edge-list -> dataset-bundle converter, the entry
// ramp for real graphs (soc-LiveJournal and friends; see
// tools/fetch_snap_dataset.sh for the download half).
//
//   $ tools/fetch_snap_dataset.sh --download soc-LiveJournal1 /data
//   $ voteopt_convert --edges=/data/soc-LiveJournal1.txt \
//       --out=/data/lj --compact_ids
//   $ voteopt_serve --bundle=/data/lj --theta=1048576 \
//       --block_budget_bytes=268435456 --build_only
//
// The parser streams the file twice (degrees, then CSR fill), so peak
// memory is the output CSR — never the text. The bundle's graph members
// are written as binary CSR stores; everything downstream (serve, bench,
// the api::Engine) loads them like any other bundle.
#include <iostream>

#include "datasets/convert.h"
#include "util/options.h"

using namespace voteopt;

namespace {

constexpr char kUsage[] = R"(usage: voteopt_convert --edges=<path> --out=<prefix> [flags]

Converts a SNAP-style edge list ("src dst [weight]"; '#'/'%' comments,
blank lines, duplicate edges, self-loops, and out-of-order ids are all
handled) into a voteopt dataset bundle with binary graph members.

  --edges=<path>        input edge list (required)
  --out=<prefix>        output bundle prefix (required)
  --undirected          emit both directions per input line
  --keep_self_loops     keep u -> u edges (dropped by default)
  --compact_ids         relabel occurring ids to [0, n), ascending
  --max_node_id=<N>     reject ids above N (default 2^28 - 1)
  --mu=<F>              interaction-count decay w = 1 - e^{-a/mu}
                        (default 10.0; paper App. D)
  --candidates=<N>      synthetic campaigns to attach (default 2)
  --opinion_seed=<N>    RNG seed for the synthetic opinions (default 7)
  --target=<N>          default target candidate (default 0)
  --name=<str>          display name in the bundle meta
  --help                print this message and exit
)";

}  // namespace

int main(int argc, char** argv) {
  Options options(argc, argv);
  if (options.GetBool("help", false)) {
    std::cout << kUsage;
    return 0;
  }
  const std::string edges = options.GetString("edges", "");
  const std::string out = options.GetString("out", "");
  if (edges.empty() || out.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  datasets::ConvertOptions convert;
  convert.stream.undirected = options.GetBool("undirected", false);
  convert.stream.drop_self_loops = !options.GetBool("keep_self_loops", false);
  convert.stream.compact_ids = options.GetBool("compact_ids", false);
  convert.stream.max_node_id = static_cast<uint64_t>(options.GetInt(
      "max_node_id", static_cast<int64_t>(convert.stream.max_node_id)));
  convert.mu = options.GetDouble("mu", 10.0);
  convert.num_candidates =
      static_cast<uint32_t>(options.GetInt("candidates", 2));
  convert.opinion_seed =
      static_cast<uint64_t>(options.GetInt("opinion_seed", 7));
  convert.target = static_cast<uint32_t>(options.GetInt("target", 0));
  convert.name = options.GetString("name", "converted");

  auto report = datasets::ConvertEdgeListToBundle(edges, out, convert);
  if (!report.ok()) {
    std::cerr << "conversion failed: " << report.status().ToString() << "\n";
    return 1;
  }
  std::cerr << "converted " << edges << " -> " << out << ".*\n"
            << "  nodes: " << report->num_nodes
            << "  edges: " << report->num_edges << "\n"
            << "  input lines: " << report->parse.lines
            << " (comments: " << report->parse.comment_lines
            << ", edge records: " << report->parse.edge_records
            << ", self-loops dropped: " << report->parse.self_loops_dropped
            << ", parallel duplicates: " << report->parse.duplicate_edges
            << ")\n"
            << "  influence fingerprint: " << report->influence_file_fnv
            << "\n";
  return 0;
}
