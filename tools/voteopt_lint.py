#!/usr/bin/env python3
"""voteopt_lint: the repo-specific determinism linter.

Statically enforces the determinism-ledger invariants of
docs/ARCHITECTURE.md across src/ and tools/ (the library and the CLIs;
tests and benches may do what they like):

  forbidden-rng
      No rand()/srand()/std::random_device/std::mt19937 (or any other
      <random> engine) outside src/util/rng.* — every stochastic
      component draws from the explicitly seeded util::Rng, which is
      what makes sketches a pure function of (master_seed, theta,
      horizon) (ledger entries 1 and 7).

  wall-clock
      No system_clock / time() / gettimeofday / clock_gettime outside
      src/util/timer.h — all timing reads the one steady_clock
      stopwatch; system_clock steps under NTP and corrupts latency
      measurements (the obs layer's contract, ledger entry 8).

  nondeterministic-iteration
      No iteration over std::unordered_map / std::unordered_set in the
      ANSWER-PRODUCING layers (src/core, src/voting, src/api,
      src/serve, src/net): unordered iteration order varies across
      libstdc++ versions and hash seeds, so any answer bytes derived
      from it would break bit-identity (ledger entries 3, 6, 9).
      Iteration that provably cannot reach answer bytes may be
      annotated  // lint: nondeterministic-ok(<reason>)  on the same or
      the preceding line; an empty reason does not count.

  bare-thread
      No std::thread outside src/util and src/net — concurrency routes
      through util::ThreadPool (annotated, TSan-covered) or the net
      layer's dedicated I/O and coordinator threads. Ad-hoc threads
      elsewhere would dodge both the thread-safety annotations and the
      CI TSan job.

  library-cout
      No std::cout in library code (src/): the serving stack's stdout
      is the wire protocol, and a stray print interleaves with response
      lines. CLIs under tools/ own their stdout and are exempt.

  frozen-mutation
      No const_cast that names a WalkSet or its Frozen view outside
      src/dyn/ — a published sketch's frozen layer is immutable and
      shared zero-copy across every worker (ledger entry 10): mutating
      it in place would corrupt concurrent readers AND break the
      repaired-equals-rebuilt invariant. The dyn layer alone may take
      frozen bytes apart, and it does so by splicing them into a NEW
      WalkSet, never by writing through the shared one.

Every rule may also be waived per line with
  // lint: <rule>-ok(<reason>)
or per file/prefix via the allowlist (tools/lint_allowlist.txt):
  <rule> <path-prefix>  # justification

Exit status: 0 clean, 1 violations found, 2 usage error.
Self test: --selftest runs every rule against the golden fixtures in
tests/lint_selftest/ and asserts exact finding counts.
"""

import argparse
import os
import re
import sys

# ---------------------------------------------------------------------------
# Source scanning: strip comments and string literals so a rule never
# fires on prose (e.g. a header comment explaining WHY system_clock is
# banned), while keeping line numbers intact. The original lines are
# kept for the `// lint: ...-ok(...)` escape-hatch lookup.
# ---------------------------------------------------------------------------


def strip_comments_and_strings(text):
    """Returns `text` with comments and string/char literals blanked.

    Newlines are preserved so line numbers survive. Handles // and /* */
    comments, "..." and '...' literals with backslash escapes, and basic
    R"(...)" raw strings.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c == "R" and text[i : i + 2] == 'R"':
            m = re.match(r'R"([^()\s]*)\(', text[i:])
            if m is None:
                out.append(c)
                i += 1
                continue
            closer = ")" + m.group(1) + '"'
            end = text.find(closer, i + m.end())
            end = n if end < 0 else end + len(closer)
            out.extend(ch if ch == "\n" else " " for ch in text[i:end])
            i = end
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

ANSWER_LAYERS = ("src/core/", "src/voting/", "src/api/", "src/serve/",
                 "src/net/")

UNORDERED_DECL = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{()]*>[&*\s]*"
    r"(?:[A-Za-z_]\w*\s*,\s*)*([A-Za-z_]\w*)\s*(?:GUARDED_BY\([^)]*\)\s*)?"
    r"[;={,)]")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def waived(rule, raw_lines, lineno):
    """True when line `lineno` (1-based) or the line above carries a
    non-empty  // lint: <rule>-ok(reason)  annotation. The generic
    spelling nondeterministic-ok(...) waives nondeterministic-iteration
    (the name the determinism ledger documents)."""
    names = [f"{rule}-ok"]
    if rule == "nondeterministic-iteration":
        names.append("nondeterministic-ok")
    pattern = re.compile(
        r"//\s*lint:\s*(?:" + "|".join(re.escape(n) for n in names) +
        r")\(\s*([^)]*\S)\s*\)")
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(raw_lines) and pattern.search(raw_lines[ln - 1]):
            return True
    return False


def grep_rule(rule, pattern, message, stripped_lines, raw_lines, path):
    findings = []
    for idx, line in enumerate(stripped_lines, start=1):
        if pattern.search(line) and not waived(rule, raw_lines, idx):
            findings.append(Finding(rule, path, idx, message))
    return findings


def check_forbidden_rng(path, stripped_lines, raw_lines):
    if path.startswith("src/util/rng."):
        return []
    pattern = re.compile(
        r"(?<!\w)(?:s?rand\s*\(|random_device\b|mt19937(?:_64)?\b|"
        r"minstd_rand0?\b|default_random_engine\b|ranlux\d+\b|knuth_b\b)")
    return grep_rule(
        "forbidden-rng", pattern,
        "unseeded/stdlib RNG; draw from util::Rng (src/util/rng.h) so the "
        "stream is reproducible", stripped_lines, raw_lines, path)


def check_wall_clock(path, stripped_lines, raw_lines):
    if path == "src/util/timer.h":
        return []
    pattern = re.compile(
        r"(?:\bsystem_clock\b|(?<![\w.>])time\s*\(|\bgettimeofday\s*\(|"
        r"\bclock_gettime\s*\(|\blocaltime\s*\(|\bgmtime\s*\()")
    return grep_rule(
        "wall-clock", pattern,
        "wall-clock time source; use util::WallTimer (steady_clock, "
        "src/util/timer.h)", stripped_lines, raw_lines, path)


def check_nondeterministic_iteration(path, stripped_lines, raw_lines):
    if not path.startswith(ANSWER_LAYERS):
        return []
    text = "\n".join(stripped_lines)
    names = set(UNORDERED_DECL.findall(text))
    if not names:
        return []
    findings = []
    alt = "|".join(re.escape(name) for name in sorted(names))
    # Range-for over a tracked container (optionally behind member/deref
    # syntax), or an explicit iterator walk via .begin()/.cbegin().
    iter_pattern = re.compile(
        r"(?::\s*(?:[\w>\-.]+(?:\.|->))?(?:" + alt + r")\s*\)"
        r"|\b(?:" + alt + r")\s*(?:\.|->)\s*c?begin\s*\()")
    for idx, line in enumerate(stripped_lines, start=1):
        if iter_pattern.search(line) and not waived(
                "nondeterministic-iteration", raw_lines, idx):
            findings.append(Finding(
                "nondeterministic-iteration", path, idx,
                "iterating an unordered container in an answer-producing "
                "layer; order varies across stdlib/hash seeds — use an "
                "ordered container, sort first, or annotate "
                "// lint: nondeterministic-ok(<reason>)"))
    return findings


def check_bare_thread(path, stripped_lines, raw_lines):
    if path.startswith(("src/util/", "src/net/")):
        return []
    # std::thread::hardware_concurrency() is a property query, not a
    # spawned thread — exempt.
    pattern = re.compile(r"\bstd\s*::\s*j?thread\b(?!\s*::)")
    return grep_rule(
        "bare-thread", pattern,
        "bare std::thread outside src/util and src/net; route concurrency "
        "through util::ThreadPool or the net layer", stripped_lines,
        raw_lines, path)


def check_library_cout(path, stripped_lines, raw_lines):
    if not path.startswith("src/"):
        return []
    pattern = re.compile(r"\bstd\s*::\s*cout\b")
    return grep_rule(
        "library-cout", pattern,
        "std::cout in library code; stdout belongs to the wire protocol — "
        "return data or use the obs layer", stripped_lines, raw_lines, path)


def check_frozen_mutation(path, stripped_lines, raw_lines):
    if path.startswith("src/dyn/"):
        return []
    # const_cast whose target type names the sketch or its frozen view
    # (core::WalkSet, WalkSet::Frozen, ...). The cast is the only way to
    # obtain a writable handle on a published sketch, so banning it bans
    # the mutation.
    pattern = re.compile(
        r"\bconst_cast\s*<[^>]*\b(?:WalkSet|Frozen)\b")
    return grep_rule(
        "frozen-mutation", pattern,
        "const_cast on a frozen WalkSet/sketch view outside src/dyn; the "
        "published sketch is immutable and shared — repair it through "
        "dyn::SketchRepairer instead", stripped_lines, raw_lines, path)


RULES = [
    check_forbidden_rng,
    check_wall_clock,
    check_nondeterministic_iteration,
    check_bare_thread,
    check_library_cout,
    check_frozen_mutation,
]

SOURCE_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")


def lint_source(path, text, allowlist):
    raw_lines = text.splitlines()
    stripped_lines = strip_comments_and_strings(text).splitlines()
    while len(stripped_lines) < len(raw_lines):
        stripped_lines.append("")
    findings = []
    for rule in RULES:
        findings.extend(rule(path, stripped_lines, raw_lines))
    return [
        f for f in findings
        if not any(f.rule == rule and f.path.startswith(prefix)
                   for rule, prefix in allowlist)
    ]


def load_allowlist(path):
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                sys.exit(f"{path}:{lineno}: expected '<rule> <path-prefix>'")
            entries.append((parts[0], parts[1]))
    return entries


def lint_tree(root, paths, allowlist):
    findings = []
    for top in paths:
        top_abs = os.path.join(root, top)
        if not os.path.isdir(top_abs):
            sys.exit(f"voteopt_lint: no such directory: {top_abs}")
        for dirpath, _, filenames in os.walk(top_abs):
            for name in sorted(filenames):
                if not name.endswith(SOURCE_EXTENSIONS):
                    continue
                abspath = os.path.join(dirpath, name)
                relpath = os.path.relpath(abspath, root).replace(os.sep, "/")
                with open(abspath, encoding="utf-8") as fh:
                    findings.extend(lint_source(relpath, fh.read(), allowlist))
    return findings


# ---------------------------------------------------------------------------
# Self test: golden fixtures, each expected to fire one rule exactly once
# (or to stay clean). The fixture's first line declares the pseudo-path
# it is linted under:  // lint-fixture-path: src/core/foo.cc
# ---------------------------------------------------------------------------

EXPECTATIONS = {
    "bad_rng.cc": ("forbidden-rng", 1),
    "bad_clock.cc": ("wall-clock", 1),
    "bad_time_call.cc": ("wall-clock", 1),
    "bad_unordered.cc": ("nondeterministic-iteration", 1),
    "bad_thread.cc": ("bare-thread", 1),
    "bad_cout.cc": ("library-cout", 1),
    "bad_frozen_cast.cc": ("frozen-mutation", 1),
    "dyn_frozen_cast.cc": (None, 0),
    "annotated_unordered.cc": (None, 0),
    "comment_mentions.cc": (None, 0),
    "clean.cc": (None, 0),
}


def selftest(root):
    fixture_dir = os.path.join(root, "tests", "lint_selftest")
    failures = []
    seen = set()
    for name, (rule, expected_count) in sorted(EXPECTATIONS.items()):
        path = os.path.join(fixture_dir, name)
        if not os.path.exists(path):
            failures.append(f"{name}: fixture missing")
            continue
        seen.add(name)
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        m = re.match(r"//\s*lint-fixture-path:\s*(\S+)", text)
        if m is None:
            failures.append(f"{name}: missing // lint-fixture-path: header")
            continue
        findings = lint_source(m.group(1), text, allowlist=[])
        if rule is None:
            if findings:
                failures.append(
                    f"{name}: expected clean, got " +
                    "; ".join(str(f) for f in findings))
        else:
            hits = [f for f in findings if f.rule == rule]
            others = [f for f in findings if f.rule != rule]
            if len(hits) != expected_count or others:
                failures.append(
                    f"{name}: expected exactly {expected_count} "
                    f"{rule} finding(s), got " +
                    ("; ".join(str(f) for f in findings) or "none"))
    on_disk = {
        n for n in os.listdir(fixture_dir) if n.endswith(SOURCE_EXTENSIONS)
    } if os.path.isdir(fixture_dir) else set()
    for stray in sorted(on_disk - seen):
        failures.append(f"{stray}: fixture on disk but not in EXPECTATIONS")
    if failures:
        print("voteopt_lint selftest FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"voteopt_lint selftest: {len(EXPECTATIONS)} fixtures OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        prog="voteopt_lint.py",
        description="repo-specific determinism linter (see module docstring)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="directories to lint, relative to --root "
                        "(default: src tools)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: the linter's parent dir)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: "
                        "tools/lint_allowlist.txt under --root)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the fixture self test and exit")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if args.selftest:
        return selftest(root)

    allowlist_path = args.allowlist or os.path.join(root, "tools",
                                                    "lint_allowlist.txt")
    allowlist = load_allowlist(allowlist_path)
    findings = lint_tree(root, args.paths or ["src", "tools"], allowlist)
    for finding in findings:
        print(finding)
    if findings:
        print(f"voteopt_lint: {len(findings)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
