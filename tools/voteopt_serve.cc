// voteopt_serve: the online campaign query service driver.
//
// Reads newline-delimited JSON requests (serve/protocol.h) from a file or
// stdin and writes one JSON response per line — the scaffold a real RPC
// frontend plugs into later. One process loads the dataset bundle and the
// persisted sketch once and answers every query from them.
//
//   # offline: build the sketch once and persist it into the bundle
//   $ voteopt_serve --bundle=/data/yelp --theta=1048576 --build_only
//
//   # online: answer a batch of mixed queries from the persisted store
//   $ voteopt_serve --bundle=/data/yelp --requests=batch.jsonl
//   where batch.jsonl holds lines like
//       {"op": "topk", "k": 10, "rule": "plurality"}
//       {"op": "minseed", "k_max": 200}
//       {"op": "evaluate", "seeds": [3, 17], "override": [[5, 0.9]]}
//
// Flags:
//   --bundle=<prefix>    dataset bundle prefix (required unless --demo)
//   --demo               synthesize a demo bundle + sketch in ./ and serve it
//   --requests=<path|->  request file (default "-": stdin)
//   --out=<path|->       response file (default "-": stdout)
//   --theta=<N>          walks to build when the sketch file is missing
//   --t=<N>              horizon for a freshly built sketch (default 20)
//   --threads=<N>        sketch-builder threads (0 = hardware)
//   --save_sketch=0|1    persist a freshly built sketch (default 1)
//   --build_only         build + persist the sketch, then exit
//   --mmap=0|1           mmap the sketch instead of copying (default 1)
//   --cache=<N>          evaluator LRU capacity (default 4)
#include <fstream>
#include <iostream>

#include "datasets/io.h"
#include "datasets/synthetic.h"
#include "serve/service.h"
#include "util/options.h"

using namespace voteopt;

int main(int argc, char** argv) {
  Options options(argc, argv);

  std::string bundle = options.GetString("bundle", "");
  if (bundle.empty() && !options.GetBool("demo", false)) {
    std::cerr << "usage: voteopt_serve --bundle=<prefix> [--requests=<path>]"
                 " (or --demo; see the header of tools/voteopt_serve.cc)\n";
    return 2;
  }
  if (bundle.empty()) {
    bundle = "./voteopt_demo";
    const datasets::Dataset demo = datasets::MakeDataset(
        datasets::DatasetName::kTwitterElection, 0.05, /*seed=*/3);
    if (Status st = datasets::SaveDatasetBundle(demo, bundle); !st.ok()) {
      std::cerr << "demo bootstrap failed: " << st.ToString() << "\n";
      return 1;
    }
    std::cerr << "wrote a demo bundle to " << bundle << ".*\n";
  }

  serve::ServiceOptions service_options;
  service_options.bundle_prefix = bundle;
  service_options.sketch_path = options.GetString("sketch", "");
  service_options.build_theta =
      static_cast<uint64_t>(options.GetInt("theta", 1 << 18));
  service_options.build_horizon =
      static_cast<uint32_t>(options.GetInt("t", 20));
  service_options.num_threads =
      static_cast<uint32_t>(options.GetInt("threads", 0));
  service_options.save_built_sketch = options.GetBool("save_sketch", true);
  service_options.sketch_load_mode = options.GetBool("mmap", true)
                                         ? store::SketchLoadMode::kMmap
                                         : store::SketchLoadMode::kCopy;
  service_options.evaluator_cache_capacity =
      static_cast<uint32_t>(options.GetInt("cache", 4));

  auto service = serve::CampaignService::Open(service_options);
  if (!service.ok()) {
    std::cerr << "cannot open service: " << service.status().ToString()
              << "\n";
    return 1;
  }
  const auto& meta = (*service)->sketch_meta();
  std::cerr << "serving '" << (*service)->dataset().name
            << "': n=" << (*service)->dataset().influence.num_nodes()
            << " r=" << (*service)->dataset().state.num_candidates()
            << " | sketch: theta=" << meta.theta << " t=" << meta.horizon
            << " target=" << meta.target
            << ((*service)->stats().sketch_built ? " (built now)"
                 : service_options.sketch_load_mode ==
                         store::SketchLoadMode::kMmap
                     ? " (loaded, mmap zero-copy)"
                     : " (loaded, copied)")
            << "\n";
  if (options.GetBool("build_only", false)) return 0;

  const std::string requests_path = options.GetString("requests", "-");
  const std::string out_path = options.GetString("out", "-");
  std::ifstream request_file;
  if (requests_path != "-") {
    request_file.open(requests_path);
    if (!request_file) {
      std::cerr << "cannot open " << requests_path << "\n";
      return 1;
    }
  }
  std::istream& in = requests_path == "-" ? std::cin : request_file;
  std::ofstream out_file;
  if (out_path != "-") {
    out_file.open(out_path);
    if (!out_file) {
      std::cerr << "cannot open " << out_path << " for writing\n";
      return 1;
    }
  }
  std::ostream& out = out_path == "-" ? std::cout : out_file;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    auto request = serve::ParseRequest(line);
    if (!request.ok()) {
      serve::Response response;
      response.op = "?";
      response.ok = false;
      response.error = request.status().ToString();
      out << response.ToJson() << "\n";
      continue;
    }
    out << (*service)->Handle(*request).ToJson() << "\n";
  }

  const auto& stats = (*service)->stats();
  std::cerr << "served " << stats.queries << " queries (" << stats.errors
            << " errors), evaluator cache " << stats.evaluator_cache_hits
            << " hits / " << stats.evaluator_cache_misses
            << " misses, " << stats.sketch_resets << " sketch resets\n";
  return 0;
}
