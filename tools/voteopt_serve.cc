// voteopt_serve: the concurrent multi-dataset campaign query service — a
// JSON-line transport in front of api::Engine, the single query-dispatch
// component (embedded C++ callers execute the identical code path).
//
// Reads newline-delimited JSON requests (docs/PROTOCOL.md) from a file or
// stdin and writes one JSON response per line, in request order — the
// scaffold a real RPC frontend plugs into later. One process hosts any
// number of dataset bundles with their persisted sketches (loadable and
// evictable at runtime via the load/unload/list verbs) and fans
// independent queries out onto a worker pool; answers are bit-identical
// whatever the thread count.
//
//   # offline: build the sketch once and persist it into the bundle
//   $ voteopt_serve --bundle=/data/yelp --theta=1048576 --build_only
//
//   # online: serve mixed query batches from several persisted stores
//   $ voteopt_serve --bundle=/data/yelp --load=dblp=/data/dblp
//       --threads=8 --requests=batch.jsonl
//   where batch.jsonl holds lines like (with several datasets hosted,
//   every query names the one it targets)
//       {"op": "topk", "k": 10, "rule": "plurality", "dataset": "default"}
//       {"op": "topk", "k": 10, "method": "DC", "dataset": "default"}
//       {"op": "minseed", "k_max": 200, "dataset": "dblp"}
//       {"op": "evaluate", "seeds": [3, 17], "override": [[5, 0.9]],
//        "dataset": "default"}
//       {"op": "methodcompare", "v": 2, "k": 10, "dataset": "default"}
//       {"op": "rulesweep", "v": 2, "k": 10, "dataset": "dblp"}
//       {"op": "list"}
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "datasets/io.h"
#include "datasets/synthetic.h"
#include "net/server.h"
#include "serve/protocol.h"
#include "util/options.h"
#include "util/timer.h"

using namespace voteopt;

namespace {

constexpr char kUsage[] = R"(usage: voteopt_serve [flags]

Serves topk / minseed / evaluate / methodcompare / rulesweep and the
load / unload / list / stats admin verbs (newline-delimited JSON; see
docs/PROTOCOL.md) against one or more hosted dataset bundles and their
persisted sketches. Every request dispatches through api::Engine, the same
code path embedded C++ callers use.

Queries take "rule" = cumulative | plurality | papproval | positional |
copeland | borda (borda derives its weights from the loaded dataset's
candidate count) and "method" = DM | RW | RS | IC | LT | GED-T | PR | RWR |
DC (case-insensitive; default RS, the sketch-backed recommendation).

Datasets:
  --bundle=<prefix>      bundle hosted as "default" (required unless --demo
                         or --load is given)
  --load=<n>=<p>[,...]   additional datasets: comma-separated name=prefix
                         pairs, e.g. --load=yelp=/data/yelp,dblp=/data/dblp
  --demo                 synthesize a demo bundle + sketch in ./ and serve it
  --sketch=<path>        sketch file for --bundle (default <prefix>.sketch)
  --mmap=0|1             mmap sketches instead of copying (default 1)

Sketch build fallback (when a bundle has no persisted sketch):
  --theta=<N>            walks to build (default 2^18; 0 = fail instead)
  --t=<N>                horizon for a freshly built sketch (default 20)
  --build_threads=<N>    sketch-builder threads (0 = one per core)
  --save_sketch=0|1      persist a freshly built sketch (default 1)
  --build_only           build + persist the sketch(es), then exit
  --block_budget_bytes=<N>  build out of core: partition the graph into
                         node-range blocks of at most N resident bytes and
                         stream walks block-at-a-time (0 = in-memory build;
                         the sketch is bit-identical either way)

Serving:
  --threads=<N>          query worker threads (0 = one per core; default 1;
                         answers are identical for every value)
  --batch=<N>            dispatch window: requests read before fanning out
                         (responses stay in request order; default 128 for
                         --requests files, 1 — answer every line as it
                         arrives — when reading stdin, so interactive and
                         pipe-connected clients never wait on a full window)
  --cache=<N>            per-worker evaluator LRU capacity (default 6 —
                         holds rulesweep's five rules plus one more)
  --requests=<path|->    request file (default "-": stdin)
  --out=<path|->         response file (default "-": stdout)
  --help                 print this message and exit

Network serving (docs/PROTOCOL.md "Transports"; the protocol over a
socket is the same newline-JSON, answers bit-identical to the stdin path):
  --listen=<port>        serve TCP instead of stdin: accept connections and
                         answer one response line per request line, per
                         connection in request order (0 = kernel-assigned
                         ephemeral port; the bound port is printed to
                         stderr as "listening on <host>:<port>")
  --listen_host=<addr>   bind address (default 127.0.0.1; use 0.0.0.0 to
                         accept non-local clients)
  --net_queue_depth=<N>  per-dataset admission-queue cap; requests beyond
                         it are shed with an `overloaded` error response
                         (default 256)
  --net_batch_max=<N>    largest engine batch window assembled from one
                         dataset's queue (default 64)
  --net_coalesce_us=<N>  microseconds a non-full window waits for more
                         requests before dispatching (default 0: dispatch
                         immediately; batching still emerges under load)
  --net_executors=<N>    engine batch windows in flight at once (default 2)
  --net_read_timeout_ms=<N>  drop a connection holding an unterminated
                         request line longer than this (slow-loris
                         defense; default 30000, 0 = off)
  --net_max_line_bytes=<N>  longest accepted request line; longer ones get
                         an error response and the connection is closed
                         (default 1048576)
  --net_max_conns=<N>    connection cap; excess accepts are refused with a
                         best-effort `overloaded` line (default 1024)
  SIGINT/SIGTERM stop accepting, drain in-flight requests, dump metrics
  (if --metrics_out is set), and exit 0.

Observability (docs/OBSERVABILITY.md):
  --metrics=0|1          record engine/registry/state-pool metrics
                         (default 1; answers are bit-identical either way)
  --metrics_out=<path>   dump the metrics registry in Prometheus text
                         exposition format to <path> (written atomically,
                         temp + rename) every --metrics_interval_sec while
                         serving and once more at exit
  --metrics_interval_sec=<N>  dump period in seconds (default 60)
  --slow_query_ms=<N>    slow-query log: a query whose handling time
                         reaches N ms emits one structured JSON line to
                         stderr with its stage timings (default -1 = off)
)";

/// Atomic metrics dump: a scraper never reads a torn file.
bool DumpMetricsFile(const std::string& path, const std::string& text) {
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream file(tmp_path, std::ios::trunc);
    if (!file) return false;
    file << text;
    if (!file) return false;
  }
  return std::rename(tmp_path.c_str(), path.c_str()) == 0;
}

/// SIGINT/SIGTERM request a graceful network-server shutdown.
volatile std::sig_atomic_t g_shutdown = 0;
void HandleShutdownSignal(int) { g_shutdown = 1; }

}  // namespace

int main(int argc, char** argv) {
  Options options(argc, argv);
  if (options.GetBool("help", false)) {
    std::cout << kUsage;
    return 0;
  }

  std::string bundle = options.GetString("bundle", "");
  const std::string extra_loads = options.GetString("load", "");
  if (bundle.empty() && extra_loads.empty() &&
      !options.GetBool("demo", false)) {
    std::cerr << kUsage;
    return 2;
  }
  if (bundle.empty() && options.GetBool("demo", false)) {
    bundle = "./voteopt_demo";
    const datasets::Dataset demo = datasets::MakeDataset(
        datasets::DatasetName::kTwitterElection, 0.05, /*seed=*/3);
    if (Status st = datasets::SaveDatasetBundle(demo, bundle); !st.ok()) {
      std::cerr << "demo bootstrap failed: " << st.ToString() << "\n";
      return 1;
    }
    std::cerr << "wrote a demo bundle to " << bundle << ".*\n";
  }

  api::EngineOptions engine_options;
  engine_options.load.bundle_prefix = bundle;
  engine_options.load.sketch_path = options.GetString("sketch", "");
  engine_options.load.build_theta =
      static_cast<uint64_t>(options.GetInt("theta", 1 << 18));
  engine_options.load.build_horizon =
      static_cast<uint32_t>(options.GetInt("t", 20));
  engine_options.load.build_threads =
      static_cast<uint32_t>(options.GetInt("build_threads", 0));
  engine_options.load.save_built_sketch =
      options.GetBool("save_sketch", true);
  engine_options.load.block_budget_bytes =
      static_cast<uint64_t>(options.GetInt("block_budget_bytes", 0));
  engine_options.load.sketch_load_mode = options.GetBool("mmap", true)
                                             ? store::SketchLoadMode::kMmap
                                             : store::SketchLoadMode::kCopy;
  engine_options.num_worker_threads =
      static_cast<uint32_t>(options.GetInt("threads", 1));
  engine_options.evaluator_cache_capacity = static_cast<uint32_t>(
      options.GetInt("cache", engine_options.evaluator_cache_capacity));
  engine_options.enable_metrics = options.GetBool("metrics", true);
  engine_options.slow_query_millis =
      static_cast<double>(options.GetInt("slow_query_ms", -1));

  auto engine = api::Engine::Open(engine_options);
  if (!engine.ok()) {
    std::cerr << "cannot open engine: " << engine.status().ToString() << "\n";
    return 1;
  }

  // Additional datasets from --load=name=prefix[,name=prefix...]. They
  // inherit the build-fallback defaults (but never an explicit --sketch,
  // which names one file for one bundle).
  if (!extra_loads.empty()) {
    api::DatasetLoadOptions extra = engine_options.load;
    extra.sketch_path.clear();
    std::stringstream items(extra_loads);
    std::string item;
    while (std::getline(items, item, ',')) {
      const size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
        std::cerr << "bad --load item '" << item
                  << "' (expected name=prefix)\n";
        return 2;
      }
      extra.bundle_prefix = item.substr(eq + 1);
      auto entry =
          (*engine)->registry().Load(item.substr(0, eq), extra);
      if (!entry.ok()) {
        std::cerr << "cannot load '" << item
                  << "': " << entry.status().ToString() << "\n";
        return 1;
      }
    }
  }

  std::cerr << "hosting " << (*engine)->registry().size()
            << " dataset(s) on " << (*engine)->num_worker_threads()
            << " worker thread(s):\n";
  for (const auto& entry : (*engine)->registry().List()) {
    std::cerr << "  '" << entry->name << "' (" << entry->dataset.name
              << "): n=" << entry->dataset.influence.num_nodes()
              << " r=" << entry->dataset.state.num_candidates()
              << " | sketch: theta=" << entry->meta.theta
              << " t=" << entry->meta.horizon
              << " target=" << entry->meta.target
              << (entry->sketch_built ? " (built now)"
                  : entry->sketch->adopted() ? " (loaded, mmap zero-copy)"
                                             : " (loaded, copied)")
              << "\n";
  }
  if (options.GetBool("build_only", false)) return 0;

  const std::string metrics_out_path = options.GetString("metrics_out", "");
  const double metrics_dump_interval_sec =
      static_cast<double>(options.GetInt("metrics_interval_sec", 60));

  // ---- Network serving: --listen=<port> replaces the stdin transport ----
  // (the stdin path below stays the default; both speak the identical
  // protocol through the identical engine, so answers are bit-identical).
  if (const int64_t listen_port = options.GetInt("listen", -1);
      listen_port >= 0) {
    if (listen_port > 65535) {
      std::cerr << "--listen=" << listen_port << " is not a TCP port\n";
      return 2;
    }
    net::ServerOptions server_options;
    server_options.host = options.GetString("listen_host", "127.0.0.1");
    server_options.port = static_cast<uint16_t>(listen_port);
    server_options.max_connections =
        static_cast<size_t>(options.GetInt("net_max_conns", 1024));
    server_options.max_line_bytes =
        static_cast<size_t>(options.GetInt("net_max_line_bytes", 1 << 20));
    server_options.read_timeout_ms =
        static_cast<uint32_t>(options.GetInt("net_read_timeout_ms", 30000));
    server_options.batch.queue_depth =
        static_cast<size_t>(options.GetInt("net_queue_depth", 256));
    server_options.batch.batch_max =
        static_cast<size_t>(options.GetInt("net_batch_max", 64));
    server_options.batch.coalesce_micros =
        static_cast<uint32_t>(options.GetInt("net_coalesce_us", 0));
    server_options.batch.num_executors =
        static_cast<uint32_t>(options.GetInt("net_executors", 2));
    if (engine_options.enable_metrics) {
      server_options.batch.metrics = &(*engine)->metrics();
    }

    net::Server server(engine->get(), server_options);
    if (Status st = server.Start(); !st.ok()) {
      std::cerr << "cannot listen: " << st.ToString() << "\n";
      return 1;
    }
    std::cerr << "listening on " << server_options.host << ":"
              << server.port() << "\n";

    std::signal(SIGINT, HandleShutdownSignal);
    std::signal(SIGTERM, HandleShutdownSignal);
    WallTimer since_net_dump;
    auto dump_net_metrics = [&] {
      if (metrics_out_path.empty()) return;
      if (!DumpMetricsFile(metrics_out_path,
                           (*engine)->metrics().ToPrometheusText())) {
        std::cerr << "cannot write metrics to " << metrics_out_path << "\n";
      }
    };
    while (g_shutdown == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      if (!metrics_out_path.empty() &&
          since_net_dump.Seconds() >= metrics_dump_interval_sec) {
        dump_net_metrics();
        since_net_dump.Restart();
      }
    }
    std::cerr << "shutdown signal received; draining\n";
    server.Stop();
    dump_net_metrics();
    const auto stats = (*engine)->stats();
    std::cerr << "served " << stats.queries << " requests (" << stats.errors
              << " errors) on " << (*engine)->num_worker_threads()
              << " worker(s)\n";
    return 0;
  }

  const std::string requests_path = options.GetString("requests", "-");
  const std::string out_path = options.GetString("out", "-");
  std::ifstream request_file;
  if (requests_path != "-") {
    request_file.open(requests_path);
    if (!request_file) {
      std::cerr << "cannot open " << requests_path << "\n";
      return 1;
    }
  }
  std::istream& in = requests_path == "-" ? std::cin : request_file;
  std::ofstream out_file;
  if (out_path != "-") {
    out_file.open(out_path);
    if (!out_file) {
      std::cerr << "cannot open " << out_path << " for writing\n";
      return 1;
    }
  }
  std::ostream& out = out_path == "-" ? std::cout : out_file;

  // Observability wiring: the transport owns the stages the engine cannot
  // see — wire parse (handed to the engine's trace via parse_millis) and
  // response serialization (metrics-only: the response bytes are final by
  // then) — plus the periodic Prometheus dump.
  const std::string& metrics_out = metrics_out_path;
  const double metrics_interval_sec = metrics_dump_interval_sec;
  obs::Registry& metrics = (*engine)->metrics();
  obs::Histogram* parse_seconds = nullptr;
  obs::Histogram* serialize_seconds = nullptr;
  if (engine_options.enable_metrics) {
    parse_seconds = metrics.GetHistogram(
        "voteopt_parse_seconds", {},
        "Wall seconds parsing one request line into its typed form");
    serialize_seconds = metrics.GetHistogram(
        "voteopt_serialize_seconds", {},
        "Wall seconds rendering one dispatch window's responses to JSON");
  }
  WallTimer since_dump;
  auto dump_metrics = [&] {
    if (metrics_out.empty()) return;
    if (!DumpMetricsFile(metrics_out, metrics.ToPrometheusText())) {
      std::cerr << "cannot write metrics to " << metrics_out << "\n";
    }
  };

  // Requests are read into a dispatch window and answered as one parallel
  // batch; responses are emitted in request order, with lines that failed
  // to parse answered in place. On stdin the window defaults to 1 so a
  // request-response conversation over a pipe never deadlocks waiting for
  // a full window.
  const size_t window_size = static_cast<size_t>(std::max<int64_t>(
      1, options.GetInt("batch", requests_path == "-" ? 1 : 128)));
  struct Slot {
    bool parsed = false;
    api::Request request;
    api::Response error;
  };
  std::vector<Slot> window;
  auto flush = [&] {
    std::vector<api::Request> requests;
    requests.reserve(window.size());
    for (const Slot& slot : window) {
      if (slot.parsed) requests.push_back(slot.request);
    }
    std::vector<api::Response> answers = (*engine)->ExecuteBatch(requests);
    WallTimer serialize_timer;
    size_t next = 0;
    for (const Slot& slot : window) {
      out << (slot.parsed ? answers[next++] : slot.error).ToJson() << "\n";
    }
    if (serialize_seconds != nullptr) {
      serialize_seconds->Observe(serialize_timer.Seconds());
    }
    window.clear();
    if (!metrics_out.empty() && since_dump.Seconds() >= metrics_interval_sec) {
      dump_metrics();
      since_dump.Restart();
    }
  };

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    Slot slot;
    WallTimer parse_timer;
    auto request = serve::ParseRequest(line);
    const double parse_millis = parse_timer.Millis();
    if (parse_seconds != nullptr) {
      parse_seconds->Observe(parse_millis * 1e-3);
    }
    if (request.ok()) {
      slot.parsed = true;
      slot.request = *request;
      slot.request.parse_millis = parse_millis;
    } else {
      slot.error.op = "?";
      slot.error.ok = false;
      slot.error.error = request.status().ToString();
    }
    window.push_back(std::move(slot));
    if (window.size() >= window_size) {
      flush();
      out.flush();
    }
  }
  flush();
  dump_metrics();

  const auto stats = (*engine)->stats();
  std::cerr << "served " << stats.queries << " requests (" << stats.errors
            << " errors) on " << (*engine)->num_worker_threads()
            << " worker(s), " << stats.worker_states
            << " worker states, evaluator cache "
            << stats.evaluator_cache_hits << " hits / "
            << stats.evaluator_cache_misses << " misses, "
            << stats.sketch_resets << " sketch resets\n";
  return 0;
}
