#!/usr/bin/env bash
# Fetches a SNAP dataset archive and unpacks the edge list, ready for
# voteopt_convert. Usage:
#
#   tools/fetch_snap_dataset.sh --download soc-LiveJournal1 [dest_dir]
#   tools/fetch_snap_dataset.sh --list
#
# then:
#
#   voteopt_convert --edges=<dest>/soc-LiveJournal1.txt --out=<dest>/lj \
#       --compact_ids
set -euo pipefail

# name -> URL of the gzipped edge list on snap.stanford.edu.
declare -A SNAP_URLS=(
  [soc-LiveJournal1]="https://snap.stanford.edu/data/soc-LiveJournal1.txt.gz"
  [soc-pokec]="https://snap.stanford.edu/data/soc-pokec-relationships.txt.gz"
  [wiki-Talk]="https://snap.stanford.edu/data/wiki-Talk.txt.gz"
  [web-Google]="https://snap.stanford.edu/data/web-Google.txt.gz"
  [cit-Patents]="https://snap.stanford.edu/data/cit-Patents.txt.gz"
  [twitter-combined]="https://snap.stanford.edu/data/twitter_combined.txt.gz"
)

usage() {
  echo "usage: $0 --download <name> [dest_dir]   (default dest: .)" >&2
  echo "       $0 --list" >&2
  exit 2
}

[[ $# -ge 1 ]] || usage

case "$1" in
  --list)
    for name in "${!SNAP_URLS[@]}"; do
      echo "$name  ${SNAP_URLS[$name]}"
    done | sort
    ;;
  --download)
    [[ $# -ge 2 ]] || usage
    name="$2"
    dest="${3:-.}"
    url="${SNAP_URLS[$name]:-}"
    if [[ -z "$url" ]]; then
      echo "unknown dataset '$name' — try --list" >&2
      exit 1
    fi
    mkdir -p "$dest"
    out="$dest/$name.txt"
    if [[ -s "$out" ]]; then
      echo "$out already exists, skipping download" >&2
      exit 0
    fi
    tmp="$out.gz.part"
    trap 'rm -f "$tmp"' EXIT
    if command -v curl >/dev/null; then
      curl -L --fail -o "$tmp" "$url"
    elif command -v wget >/dev/null; then
      wget -O "$tmp" "$url"
    else
      echo "need curl or wget" >&2
      exit 1
    fi
    gunzip -c "$tmp" > "$out"
    rm -f "$tmp"
    trap - EXIT
    echo "wrote $out" >&2
    ;;
  *)
    usage
    ;;
esac
