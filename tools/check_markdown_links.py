#!/usr/bin/env python3
"""Checks that every relative markdown link points at an existing target.

Usage: check_markdown_links.py FILE.md [FILE.md ...]

Scans inline links `[text](target)` and image links `![alt](target)`.
External targets (http/https/mailto) are skipped; everything else is
resolved relative to the containing file and must exist on disk.

Fragments are validated too: for `#section` (in-page) and `FILE.md#section`
links the fragment must match a heading of the referenced markdown file
under GitHub's slug rules (lowercase, spaces to dashes, punctuation
dropped), so renaming a section breaks the build, not the reader. This is
the CI guard that keeps README.md and docs/ from drifting apart.
"""
import os
import re
import sys

# Inline links; [1] is the target. Deliberately simple: the repo's docs use
# plain inline links without nested parentheses or angle brackets.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def slugify(heading: str) -> str:
    """GitHub's anchor slug: strip markdown emphasis/code marks and
    punctuation, lowercase, spaces to dashes."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.lower().replace(" ", "-")


def heading_slugs(path: str) -> set[str]:
    slugs: set[str] = set()
    seen: dict[str, int] = {}
    with open(path, encoding="utf-8") as handle:
        in_fence = False
        for line in handle:
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING.match(line)
            if not match:
                continue
            slug = slugify(match.group(1))
            # GitHub de-duplicates repeated headings with -1, -2, ...
            count = seen.get(slug, 0)
            seen[slug] = count + 1
            slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def check(path: str, slug_cache: dict[str, set[str]]) -> list[str]:
    def slugs_of(md_path: str) -> set[str]:
        key = os.path.abspath(md_path)
        if key not in slug_cache:
            slug_cache[key] = heading_slugs(key)
        return slug_cache[key]

    broken = []
    base = os.path.dirname(os.path.abspath(path))
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            for target in LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                file_part, _, fragment = target.partition("#")
                resolved = (
                    os.path.abspath(path)
                    if not file_part
                    else os.path.join(base, file_part)
                )
                if not os.path.exists(resolved):
                    broken.append(f"{path}:{lineno}: broken link '{target}'")
                    continue
                if fragment and resolved.endswith(".md"):
                    if fragment not in slugs_of(resolved):
                        broken.append(
                            f"{path}:{lineno}: broken anchor '{target}' "
                            f"(no heading slug '{fragment}')")
    return broken


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = []
    slug_cache: dict[str, set[str]] = {}
    for path in sys.argv[1:]:
        failures.extend(check(path, slug_cache))
    for failure in failures:
        print(failure, file=sys.stderr)
    checked = len(sys.argv) - 1
    if failures:
        print(f"{len(failures)} broken link(s) across {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"all relative links and anchors resolve across {checked} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
