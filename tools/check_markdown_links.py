#!/usr/bin/env python3
"""Checks that every relative markdown link points at an existing file.

Usage: check_markdown_links.py FILE.md [FILE.md ...]

Scans inline links `[text](target)` and image links `![alt](target)`.
External targets (http/https/mailto) and pure in-page anchors (#...) are
skipped; everything else is resolved relative to the containing file and
must exist on disk. Exits non-zero listing every broken link — the CI
guard that keeps README.md and docs/ from drifting apart.
"""
import os
import re
import sys

# Inline links; [1] is the target. Deliberately simple: the repo's docs use
# plain inline links without nested parentheses or angle brackets.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")


def check(path: str) -> list[str]:
    broken = []
    base = os.path.dirname(os.path.abspath(path))
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            for target in LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                if target.startswith("#"):
                    continue  # in-page anchor
                resolved = os.path.join(base, target.split("#", 1)[0])
                if not os.path.exists(resolved):
                    broken.append(f"{path}:{lineno}: broken link '{target}'")
    return broken


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = []
    for path in sys.argv[1:]:
        failures.extend(check(path))
    for failure in failures:
        print(failure, file=sys.stderr)
    checked = len(sys.argv) - 1
    if failures:
        print(f"{len(failures)} broken link(s) across {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"all relative links resolve across {checked} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
